// Copyright 2026 The QPGC Authors.
//
// Topological orders and the two rank functions the paper's incremental
// algorithms are built on:
//
//  * r(s)  — the *topological rank* of Section 5.1: r(s) = 0 if s's SCC has
//    no child in the condensation; nodes of one SCC share a rank; otherwise
//    r(s) = max over children + 1. Lemma 7: (u,v) in Re implies r(u) = r(v).
//
//  * rb(v) — the *bisimulation rank* of Section 5.2 (after Dovier, Piazza &
//    Policriti): rb(v) = 0 for leaves; rb(v) = -inf for nodes of a cyclic
//    sink SCC; otherwise rb(v) = max of (rb(child)+1) over well-founded
//    children SCCs and rb(child) over non-well-founded ones. Lemma 9:
//    bisimilar nodes have equal rank, and a node is only affected by updates
//    of strictly lower rank.
//
// All entry points are GraphView templates (run on Graph or frozen CSR);
// Graph overloads are compiled once in topology.cc.

#ifndef QPGC_GRAPH_TOPOLOGY_H_
#define QPGC_GRAPH_TOPOLOGY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/condensation.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace qpgc {

/// Sentinel for rb = -infinity (cyclic sink SCCs).
inline constexpr int32_t kRankNegInf = INT32_MIN;

/// Topological order of a DAG (every edge goes from an earlier to a later
/// position). Aborts if the graph has a cycle — callers pass condensations.
template <GraphView G>
std::vector<NodeId> TopologicalOrder(const G& dag) {
  const size_t n = dag.num_nodes();
  std::vector<uint32_t> in_degree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : dag.OutNeighbors(u)) {
      // Self-loops are permitted (compressed class graphs mark cyclic classes
      // with one) and ignored for ordering purposes; real multi-node cycles
      // are caught by the size check below.
      if (v != u) ++in_degree[v];
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (in_degree[u] == 0) order.push_back(u);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    for (NodeId v : dag.OutNeighbors(u)) {
      if (v == u) continue;
      if (--in_degree[v] == 0) order.push_back(v);
    }
  }
  QPGC_CHECK(order.size() == n);  // cycle otherwise
  return order;
}

/// Reverse topological order (children before parents).
template <GraphView G>
std::vector<NodeId> ReverseTopologicalOrder(const G& dag) {
  std::vector<NodeId> order = TopologicalOrder(dag);
  std::reverse(order.begin(), order.end());
  return order;
}

/// Topological ranks computed directly on a condensation DAG (rank of each
/// DAG node; used when the condensation is already available).
template <GraphView G>
std::vector<uint32_t> DagTopoRanks(const G& dag) {
  std::vector<uint32_t> rank(dag.num_nodes(), 0);
  for (NodeId c : ReverseTopologicalOrder(dag)) {
    uint32_t r = 0;
    for (NodeId d : dag.OutNeighbors(c)) {
      if (d == c) continue;  // self-loop: same SCC, contributes no rank step
      r = std::max(r, rank[d] + 1);
    }
    rank[c] = r;
  }
  return rank;
}

/// The paper's topological rank r for every node of g (Section 5.1).
template <GraphView G>
std::vector<uint32_t> ReachTopoRanks(const G& g) {
  const Condensation cond = BuildCondensation(g);
  const std::vector<uint32_t> dag_rank = DagTopoRanks(cond.dag);
  std::vector<uint32_t> rank(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    rank[v] = dag_rank[cond.scc.component[v]];
  }
  return rank;
}

/// Well-foundedness per node: WF(v) iff v cannot reach any cycle.
template <GraphView G>
std::vector<uint8_t> WellFounded(const G& g) {
  const Condensation cond = BuildCondensation(g);
  const size_t nc = cond.scc.num_components;
  // WF(c) iff c is acyclic and all condensation children are WF.
  std::vector<uint8_t> wf_comp(nc, 0);
  for (NodeId c : ReverseTopologicalOrder(cond.dag)) {
    bool wf = !cond.scc.cyclic[c];
    if (wf) {
      for (NodeId d : cond.dag.OutNeighbors(c)) {
        if (!wf_comp[d]) {
          wf = false;
          break;
        }
      }
    }
    wf_comp[c] = wf ? 1 : 0;
  }
  std::vector<uint8_t> wf(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    wf[v] = wf_comp[cond.scc.component[v]];
  }
  return wf;
}

/// Same as BisimRanks, but reusing a precomputed condensation of g.
std::vector<int32_t> BisimRanksFromCondensation(const Condensation& cond);

/// Bisimulation ranks rb for every node of g (Section 5.2). Requires the
/// condensation, which the caller typically already has.
template <GraphView G>
std::vector<int32_t> BisimRanks(const G& g) {
  return BisimRanksFromCondensation(BuildCondensation(g));
}

// Non-template Graph overloads (compiled once in topology.cc).
std::vector<NodeId> TopologicalOrder(const Graph& dag);
std::vector<NodeId> ReverseTopologicalOrder(const Graph& dag);
std::vector<uint32_t> DagTopoRanks(const Graph& dag);
std::vector<uint32_t> ReachTopoRanks(const Graph& g);
std::vector<uint8_t> WellFounded(const Graph& g);
std::vector<int32_t> BisimRanks(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_TOPOLOGY_H_
