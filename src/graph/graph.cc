// Copyright 2026 The QPGC Authors.

#include "graph/graph.h"

#include <algorithm>
#include <cstdio>

#include "graph/graph_view.h"
#include "util/memory.h"

namespace qpgc {

namespace {
// Inserts x into sorted vector v; returns false if already present.
bool SortedInsert(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

// Erases x from sorted vector v; returns false if absent.
bool SortedErase(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}
}  // namespace

NodeId Graph::AddNode(Label label) {
  const NodeId id = static_cast<NodeId>(out_.size());
  labels_.push_back(label);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

bool Graph::AddEdge(NodeId u, NodeId v) {
  QPGC_CHECK(u < out_.size() && v < out_.size());
  if (!SortedInsert(out_[u], v)) return false;
  QPGC_CHECK(SortedInsert(in_[v], u));
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(NodeId u, NodeId v) {
  QPGC_CHECK(u < out_.size() && v < out_.size());
  if (!SortedErase(out_[u], v)) return false;
  QPGC_CHECK(SortedErase(in_[v], u));
  --num_edges_;
  return true;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  QPGC_CHECK(u < out_.size() && v < out_.size());
  const auto& adj = out_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

size_t Graph::CountDistinctLabels() const {
  return qpgc::CountDistinctLabels(*this);
}

std::vector<std::pair<NodeId, NodeId>> Graph::EdgeList() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges_);
  ForEachEdge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return edges;
}

size_t Graph::MemoryBytes() const {
  return VectorBytes(labels_) + NestedVectorBytes(out_) +
         NestedVectorBytes(in_);
}

std::string Graph::DebugString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Graph(|V|=%zu, |E|=%zu, |L|=%zu)",
                num_nodes(), num_edges(), CountDistinctLabels());
  return std::string(buf);
}

}  // namespace qpgc
