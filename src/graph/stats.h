// Copyright 2026 The QPGC Authors.
//
// Descriptive statistics used by the dataset catalog and the experiment
// reports (degree distribution, SCC mass, label diversity).

#ifndef QPGC_GRAPH_STATS_H_
#define QPGC_GRAPH_STATS_H_

#include <cstddef>
#include <string>

#include "graph/graph.h"

namespace qpgc {

/// Summary statistics of a graph.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  double avg_degree = 0.0;
  size_t num_sccs = 0;
  size_t largest_scc = 0;
  /// Fraction of nodes inside non-trivial (cyclic) SCCs.
  double cyclic_node_fraction = 0.0;
  size_t num_sources = 0;  // in-degree 0
  size_t num_sinks = 0;    // out-degree 0
};

/// Computes statistics (runs an SCC decomposition).
GraphStats ComputeStats(const Graph& g);

/// Multi-line human-readable report.
std::string FormatStats(const GraphStats& s);

}  // namespace qpgc

#endif  // QPGC_GRAPH_STATS_H_
