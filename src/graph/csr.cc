// Copyright 2026 The QPGC Authors.

#include "graph/csr.h"

#include "util/memory.h"

namespace qpgc {

CsrGraph::CsrGraph() { Refreeze(Graph(0)); }

CsrGraph::CsrGraph(const Graph& g) { Refreeze(g); }

void CsrGraph::Refreeze(const Graph& g) {
  const size_t n = g.num_nodes();
  labels_.assign(g.labels().begin(), g.labels().end());

  out_offsets_.resize(n + 1);
  in_offsets_.resize(n + 1);
  out_targets_.clear();
  in_targets_.clear();
  out_targets_.reserve(g.num_edges());
  in_targets_.reserve(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    out_offsets_[u] = out_targets_.size();
    const auto out = g.OutNeighbors(u);
    out_targets_.insert(out_targets_.end(), out.begin(), out.end());
    in_offsets_[u] = in_targets_.size();
    const auto in = g.InNeighbors(u);
    in_targets_.insert(in_targets_.end(), in.begin(), in.end());
  }
  out_offsets_[n] = out_targets_.size();
  in_offsets_[n] = in_targets_.size();
}

void CsrGraph::RefreezeMapped(
    const Graph& g, const std::vector<NodeId>& remap, size_t new_n,
    std::vector<std::pair<NodeId, NodeId>>* dropped_out_edges) {
  QPGC_CHECK(remap.size() == g.num_nodes());
  labels_.resize(new_n);
  out_offsets_.resize(new_n + 1);
  in_offsets_.resize(new_n + 1);
  out_targets_.clear();
  in_targets_.clear();
  size_t kept = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId mu = remap[u];
    if (mu == kInvalidNode) continue;
    // Strictly increasing over kept nodes: mu must be exactly the next
    // compact id, which is what keeps the offset arrays dense and the
    // target runs sorted.
    QPGC_CHECK(mu == kept);
    ++kept;
    labels_[mu] = g.label(u);
    out_offsets_[mu] = out_targets_.size();
    for (const NodeId v : g.OutNeighbors(u)) {
      if (remap[v] != kInvalidNode) {
        out_targets_.push_back(remap[v]);
      } else if (dropped_out_edges != nullptr) {
        dropped_out_edges->emplace_back(mu, v);
      }
    }
    in_offsets_[mu] = in_targets_.size();
    for (const NodeId v : g.InNeighbors(u)) {
      if (remap[v] != kInvalidNode) in_targets_.push_back(remap[v]);
    }
  }
  QPGC_CHECK(kept == new_n);
  out_offsets_[new_n] = out_targets_.size();
  in_offsets_[new_n] = in_targets_.size();
}

void CsrGraph::AdoptCsr(std::vector<uint64_t> out_offsets,
                        std::vector<NodeId> out_targets,
                        std::vector<Label> labels) {
  QPGC_CHECK(!out_offsets.empty() && out_offsets.front() == 0 &&
             out_offsets.back() == out_targets.size());
  const size_t n = out_offsets.size() - 1;
  QPGC_CHECK(labels.size() == n);
  out_offsets_ = std::move(out_offsets);
  out_targets_ = std::move(out_targets);
  labels_ = std::move(labels);
  // Derive the in-direction: count in-degrees, prefix-sum, fill. Filling in
  // (u ascending, v ascending) order keeps every in-run sorted.
  in_offsets_.assign(n + 1, 0);
  for (const NodeId v : out_targets_) {
    QPGC_DCHECK(v < n);
    ++in_offsets_[v + 1];
  }
  for (size_t v = 1; v <= n; ++v) in_offsets_[v] += in_offsets_[v - 1];
  in_targets_.resize(out_targets_.size());
  std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (uint64_t e = out_offsets_[u]; e < out_offsets_[u + 1]; ++e) {
      in_targets_[cursor[out_targets_[e]]++] = u;
    }
  }
}

size_t CsrGraph::CountDistinctLabels() const {
  return qpgc::CountDistinctLabels(*this);
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::EdgeList() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  ForEachEdge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return edges;
}

size_t CsrGraph::MemoryBytes() const {
  return VectorBytes(out_offsets_) + VectorBytes(out_targets_) +
         VectorBytes(in_offsets_) + VectorBytes(in_targets_) +
         VectorBytes(labels_);
}

bool CsrBfsReaches(const CsrGraph& g, NodeId u, NodeId v, PathMode mode) {
  return BfsReaches(g, u, v, mode);
}

}  // namespace qpgc
