// Copyright 2026 The QPGC Authors.

#include "graph/csr.h"

#include "util/memory.h"

namespace qpgc {

CsrGraph::CsrGraph() { Refreeze(Graph(0)); }

CsrGraph::CsrGraph(const Graph& g) { Refreeze(g); }

void CsrGraph::Refreeze(const Graph& g) {
  const size_t n = g.num_nodes();
  labels_.assign(g.labels().begin(), g.labels().end());

  out_offsets_.resize(n + 1);
  in_offsets_.resize(n + 1);
  out_targets_.clear();
  in_targets_.clear();
  out_targets_.reserve(g.num_edges());
  in_targets_.reserve(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    out_offsets_[u] = out_targets_.size();
    const auto out = g.OutNeighbors(u);
    out_targets_.insert(out_targets_.end(), out.begin(), out.end());
    in_offsets_[u] = in_targets_.size();
    const auto in = g.InNeighbors(u);
    in_targets_.insert(in_targets_.end(), in.begin(), in.end());
  }
  out_offsets_[n] = out_targets_.size();
  in_offsets_[n] = in_targets_.size();
}

size_t CsrGraph::CountDistinctLabels() const {
  return qpgc::CountDistinctLabels(*this);
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::EdgeList() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  ForEachEdge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  return edges;
}

size_t CsrGraph::MemoryBytes() const {
  return VectorBytes(out_offsets_) + VectorBytes(out_targets_) +
         VectorBytes(in_offsets_) + VectorBytes(in_targets_) +
         VectorBytes(labels_);
}

bool CsrBfsReaches(const CsrGraph& g, NodeId u, NodeId v, PathMode mode) {
  return BfsReaches(g, u, v, mode);
}

}  // namespace qpgc
