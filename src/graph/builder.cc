// Copyright 2026 The QPGC Authors.

#include "graph/builder.h"

#include <algorithm>

namespace qpgc {

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // Fill the adjacency vectors directly: edges sorted by (u, v) append to
  // out_[u] in ascending v order and, with a degree-counting pass first, to
  // in_[v] in ascending u order — O(|V| + |E|) total, no per-edge sorted
  // insert. Hub-heavy loads (generators, edge-list files) would otherwise
  // pay O(in-degree) per edge into the hubs.
  const size_t n = labels_.size();
  Graph g(std::move(labels_));
  std::vector<size_t> out_deg(n, 0), in_deg(n, 0);
  for (const auto& [u, v] : edges_) {
    ++out_deg[u];
    ++in_deg[v];
  }
  for (NodeId w = 0; w < n; ++w) {
    g.out_[w].reserve(out_deg[w]);
    g.in_[w].reserve(in_deg[w]);
  }
  for (const auto& [u, v] : edges_) {
    g.out_[u].push_back(v);
    g.in_[v].push_back(u);
  }
  g.num_edges_ = edges_.size();

  labels_.clear();
  edges_.clear();
  return g;
}

}  // namespace qpgc
