// Copyright 2026 The QPGC Authors.

#include "graph/builder.h"

#include <algorithm>

namespace qpgc {

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g(std::move(labels_));
  // Edges are sorted by (u, v); AddEdge appends at the tail of each sorted
  // adjacency vector, so construction is linear.
  for (const auto& [u, v] : edges_) {
    const bool inserted = g.AddEdge(u, v);
    QPGC_CHECK(inserted);  // duplicates were removed above
  }
  labels_.clear();
  edges_.clear();
  return g;
}

}  // namespace qpgc
