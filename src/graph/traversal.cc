// Copyright 2026 The QPGC Authors.
//
// Non-template Graph overloads of the traversal primitives. The algorithm
// bodies live in traversal.h as GraphView templates; these shims compile the
// Graph instantiation once into the library.

#include "graph/traversal.h"

namespace qpgc {

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   Direction dir) {
  return BfsDistances<Graph>(g, source, dir);
}

bool BfsReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  return BfsReaches<Graph>(g, u, v, mode);
}

bool BidirectionalReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  return BidirectionalReaches<Graph>(g, u, v, mode);
}

bool DfsReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  return DfsReaches<Graph>(g, u, v, mode);
}

Bitset BoundedMultiSourceReach(const Graph& g, std::span<const NodeId> sources,
                               uint32_t max_depth, Direction dir) {
  return BoundedMultiSourceReach<Graph>(g, sources, max_depth, dir);
}

Bitset Descendants(const Graph& g, NodeId u) { return Descendants<Graph>(g, u); }

Bitset Ancestors(const Graph& g, NodeId u) { return Ancestors<Graph>(g, u); }

bool OnCycle(const Graph& g, NodeId u) { return OnCycle<Graph>(g, u); }

}  // namespace qpgc
