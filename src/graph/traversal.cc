// Copyright 2026 The QPGC Authors.

#include "graph/traversal.h"

#include <deque>

namespace qpgc {

namespace {

inline std::span<const NodeId> Neighbors(const Graph& g, NodeId u,
                                         Direction dir) {
  return dir == Direction::kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
}

}  // namespace

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   Direction dir) {
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachedDist);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : Neighbors(g, u, dir)) {
      if (dist[v] == kUnreachedDist) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool BfsReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Non-empty semantics: start the search from u's successors.
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (!visited[w]) {
      visited[w] = 1;
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    const NodeId x = queue.front();
    queue.pop_front();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!visited[w]) {
        visited[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return false;
}

bool BidirectionalReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Two frontiers expanded alternately, smaller first. Mark sets: 1 = reached
  // forward from u (via >= 1 edge), 2 = reached backward from v (via >= 1
  // edge). Intersection, or a direct hit of v / u, means u reaches v.
  std::vector<uint8_t> mark(g.num_nodes(), 0);
  std::deque<NodeId> fwd, bwd;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (mark[w] != 1) {
      mark[w] = 1;
      fwd.push_back(w);
    }
  }
  for (NodeId w : g.InNeighbors(v)) {
    if (w == u) return true;
    if (mark[w] == 1) return true;
    if (mark[w] != 2) {
      mark[w] = 2;
      bwd.push_back(w);
    }
  }
  while (!fwd.empty() && !bwd.empty()) {
    if (fwd.size() <= bwd.size()) {
      const size_t level = fwd.size();
      for (size_t i = 0; i < level; ++i) {
        const NodeId x = fwd.front();
        fwd.pop_front();
        for (NodeId w : g.OutNeighbors(x)) {
          if (w == v || mark[w] == 2) return true;
          if (mark[w] != 1) {
            mark[w] = 1;
            fwd.push_back(w);
          }
        }
      }
    } else {
      const size_t level = bwd.size();
      for (size_t i = 0; i < level; ++i) {
        const NodeId x = bwd.front();
        bwd.pop_front();
        for (NodeId w : g.InNeighbors(x)) {
          if (w == u || mark[w] == 1) return true;
          if (mark[w] != 2) {
            mark[w] = 2;
            bwd.push_back(w);
          }
        }
      }
    }
  }
  return false;
}

bool DfsReaches(const Graph& g, NodeId u, NodeId v, PathMode mode) {
  if (mode == PathMode::kReflexive && u == v) return true;
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (!visited[w]) {
      visited[w] = 1;
      stack.push_back(w);
    }
  }
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!visited[w]) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

Bitset BoundedMultiSourceReach(const Graph& g, std::span<const NodeId> sources,
                               uint32_t max_depth, Direction dir) {
  Bitset reached(g.num_nodes());
  if (max_depth == 0) return reached;
  const Direction step =
      dir == Direction::kBackward ? Direction::kBackward : Direction::kForward;
  std::vector<uint8_t> in_frontier(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  // Depth-0 layer: the sources themselves (not marked as reached — paths must
  // be non-empty).
  for (NodeId s : sources) {
    if (!in_frontier[s]) {
      in_frontier[s] = 1;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  for (uint32_t depth = 1; depth <= max_depth && !frontier.empty(); ++depth) {
    next.clear();
    for (NodeId x : frontier) {
      for (NodeId w : Neighbors(g, x, step)) {
        if (!reached.Test(w)) {
          reached.Set(w);
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
    if (max_depth == kUnboundedDepth && frontier.empty()) break;
  }
  return reached;
}

Bitset Descendants(const Graph& g, NodeId u) {
  const NodeId src[] = {u};
  return BoundedMultiSourceReach(g, src, kUnboundedDepth, Direction::kForward);
}

Bitset Ancestors(const Graph& g, NodeId u) {
  const NodeId src[] = {u};
  return BoundedMultiSourceReach(g, src, kUnboundedDepth, Direction::kBackward);
}

bool OnCycle(const Graph& g, NodeId u) {
  return BfsReaches(g, u, u, PathMode::kNonEmpty);
}

}  // namespace qpgc
