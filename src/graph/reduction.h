// Copyright 2026 The QPGC Authors.
//
// Transitive reduction of a DAG. compressR (Section 3.2, lines 6-8) inserts
// no edge whose endpoints are already connected — i.e. it emits a minimal
// equivalent graph. On a DAG the minimal equivalent graph is *unique* (the
// transitive reduction of Aho, Garey & Ullman), which we exploit so that the
// incremental algorithm's output is comparable edge-for-edge with the batch
// algorithm's.
//
// Self-loops are preserved verbatim: on compressed class graphs they encode
// non-empty self-reachability of cyclic classes and are never redundant.

#ifndef QPGC_GRAPH_REDUCTION_H_
#define QPGC_GRAPH_REDUCTION_H_

#include "graph/graph.h"

namespace qpgc {

/// Returns the unique transitive reduction of `dag` (which may carry
/// self-loops but no other cycles). Labels are copied. Memory is bounded by
/// processing reachability in column blocks of `block_cols` ids.
Graph TransitiveReductionDag(const Graph& dag, size_t block_cols = 8192);

/// Number of edges the reduction would remove, without materializing it.
size_t CountRedundantEdgesDag(const Graph& dag, size_t block_cols = 8192);

}  // namespace qpgc

#endif  // QPGC_GRAPH_REDUCTION_H_
