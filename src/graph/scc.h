// Copyright 2026 The QPGC Authors.
//
// Strongly connected components (iterative Tarjan). Both compression schemes
// start here: compressR collapses SCCs outright (the paper's optimization,
// Section 3.2), and the bisimulation rank rb (Section 5.2) is defined over
// the SCC graph.

#ifndef QPGC_GRAPH_SCC_H_
#define QPGC_GRAPH_SCC_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/common.h"

namespace qpgc {

/// Output of SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC. Ids are assigned in *reverse topological
  /// order*: if the condensation has an edge C1 -> C2, then id(C1) > id(C2).
  std::vector<NodeId> component;
  /// Number of SCCs.
  size_t num_components = 0;
  /// cyclic[c] = 1 iff SCC c contains a cycle (size > 1, or a self-loop).
  std::vector<uint8_t> cyclic;
  /// members[c] = nodes of SCC c.
  std::vector<std::vector<NodeId>> members;
};

/// Tarjan's algorithm, iterative (no recursion; safe for deep graphs).
/// O(|V| + |E|).
SccResult ComputeScc(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_SCC_H_
