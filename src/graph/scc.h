// Copyright 2026 The QPGC Authors.
//
// Strongly connected components (iterative Tarjan). Both compression schemes
// start here: compressR collapses SCCs outright (the paper's optimization,
// Section 3.2), and the bisimulation rank rb (Section 5.2) is defined over
// the SCC graph. Templated over GraphView so the batch pipeline runs it on
// frozen CSR snapshots; a Graph overload keeps existing call sites.

#ifndef QPGC_GRAPH_SCC_H_
#define QPGC_GRAPH_SCC_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/common.h"

namespace qpgc {

/// Output of SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC. Ids are assigned in *reverse topological
  /// order*: if the condensation has an edge C1 -> C2, then id(C1) > id(C2).
  std::vector<NodeId> component;
  /// Number of SCCs.
  size_t num_components = 0;
  /// cyclic[c] = 1 iff SCC c contains a cycle (size > 1, or a self-loop).
  std::vector<uint8_t> cyclic;
  /// members[c] = nodes of SCC c.
  std::vector<std::vector<NodeId>> members;
};

/// Tarjan's algorithm, iterative (no recursion; safe for deep graphs).
/// O(|V| + |E|).
template <GraphView G>
SccResult ComputeScc(const G& g) {
  const size_t n = g.num_nodes();
  SccResult result;
  result.component.assign(n, kInvalidNode);

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<NodeId> stack;  // Tarjan's node stack

  // Explicit DFS frame: node plus position in its adjacency list.
  struct Frame {
    NodeId node;
    size_t next_child;
  };
  std::vector<Frame> call_stack;
  uint32_t next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId u = frame.node;
      const auto children = g.OutNeighbors(u);
      if (frame.next_child < children.size()) {
        const NodeId w = children[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[u] = std::min(lowlink[u], index[w]);
        }
      } else {
        // u is done: maybe an SCC root.
        if (lowlink[u] == index[u]) {
          const NodeId comp = static_cast<NodeId>(result.num_components++);
          std::vector<NodeId> comp_members;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            result.component[w] = comp;
            comp_members.push_back(w);
          } while (w != u);
          const bool is_cyclic =
              comp_members.size() > 1 ||
              (comp_members.size() == 1 &&
               ViewHasEdge(g, comp_members[0], comp_members[0]));
          result.cyclic.push_back(is_cyclic ? 1 : 0);
          std::sort(comp_members.begin(), comp_members.end());
          result.members.push_back(std::move(comp_members));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return result;
}

/// Non-template Graph overload (compiled once in scc.cc).
SccResult ComputeScc(const Graph& g);

}  // namespace qpgc

#endif  // QPGC_GRAPH_SCC_H_
