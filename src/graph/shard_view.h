// Copyright 2026 The QPGC Authors.
//
// Sharding a labeled graph for partitioned compression and serving.
//
// The paper's compressions are query preserving *per graph*: running
// compressR / compressB over each partition of a node-partitioned graph
// yields per-shard artifacts that, with the right routing (serve/router.h),
// answer the exact same queries as the whole-graph artifacts. The pieces:
//
//  * `ShardPartition` — an ownership map: every node id is owned by exactly
//    one of `num_shards` shards (hash or contiguous assignment). Edge
//    (u, v) belongs to shard_of(u): a shard owns all out-edges of its
//    nodes, so a node's full out-neighborhood lives in exactly one shard
//    (edge-cut partitioning by source).
//  * Ghost nodes — shard s's local graph keeps the *full node universe*
//    (local ids == global ids, so no id translation anywhere). Nodes s does
//    not own are "ghosts": they carry no out-edges in s (their out-edges
//    live in their home shard) but may be targets of s's cross-shard edges.
//  * `GhostLabel(v)` — ghosts are labeled with a per-node synthetic label
//    instead of their real one. This forces every ghost into a singleton
//    block of the shard-local bisimulation: two owned nodes can only be
//    locally bisimilar when their cross-shard successors are *identical
//    nodes*, which makes the union of the per-shard partitions a genuine
//    bisimulation on the whole graph. That is the invariant the router's
//    stitched pattern quotient rests on (serve/router.h) — and it is
//    label-change-free under edge updates, so the per-shard incremental
//    layer (IncRCM/IncPCM) runs completely unmodified.
//  * `ShardView` — a GraphView of one shard over any base view: zero-copy
//    out-adjacency (owned nodes expose the base runs, ghosts expose
//    nothing), a compacted in-adjacency built in one O(|E_s|) pass, and the
//    ghost-label overlay. The whole batch pipeline (compressR, compressB,
//    Match, SCC, ...) runs on a ShardView unmodified — this is the
//    shard-local substrate the GraphView concept was designed to admit.
//  * `MaterializeShard` — the same subgraph as a dynamic `Graph`, for the
//    mutable per-shard source of truth the serving writer maintains.

#ifndef QPGC_GRAPH_SHARD_VIEW_H_
#define QPGC_GRAPH_SHARD_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// Synthetic labels for ghost nodes live at and above this value. Real
/// labels are small dense integers (util/common.h), so the upper half of the
/// label space is free; kNoLabel (0xFFFFFFFF) stays reserved.
inline constexpr Label kGhostLabelBase = Label{1} << 31;

/// The synthetic label of node v when it appears as a ghost. Unique per
/// node, never equal to any real label or to kNoLabel (checked at shard
/// view/materialization time).
inline Label GhostLabel(NodeId v) { return kGhostLabelBase + v; }

/// True iff `l` is a ghost label. Real labels are small (< kGhostLabelBase)
/// or kNoLabel, so ghostness is decidable from the label alone — which is
/// how the frozen serving artifacts recognize ghost singleton blocks
/// without consulting the partition.
inline bool IsGhostLabel(Label l) {
  return l >= kGhostLabelBase && l != kNoLabel;
}

/// True iff g can be sharded: every label is a real label (below the ghost
/// range, or kNoLabel) and the node count leaves room for per-node ghost
/// labels. Boundary-validating callers (the CLI) should reject graphs that
/// fail this instead of relying on the QPGC_CHECKs inside the shard views.
inline bool LabelsShardable(const Graph& g) {
  if (g.num_nodes() >= kNoLabel - kGhostLabelBase) return false;
  for (const Label l : g.labels()) {
    if (IsGhostLabel(l)) return false;
  }
  return true;
}

/// An ownership map of nodes onto `num_shards` shards.
///
/// Immutable after construction; safe to share across reader and writer
/// threads without synchronization. Edge updates never move a node between
/// shards (the serving layer's node universe is fixed at build time).
struct ShardPartition {
  /// shard_of[v] = owner of node v.
  std::vector<uint32_t> shard_of;
  /// Number of shards K (>= 1).
  uint32_t num_shards = 1;

  size_t num_nodes() const { return shard_of.size(); }
  bool Owns(uint32_t shard, NodeId v) const { return shard_of[v] == shard; }

  /// All nodes owned by `shard`, ascending.
  std::vector<NodeId> OwnedNodes(uint32_t shard) const {
    std::vector<NodeId> owned;
    for (NodeId v = 0; v < shard_of.size(); ++v) {
      if (shard_of[v] == shard) owned.push_back(v);
    }
    return owned;
  }

  /// Hash partition: shard_of[v] = mix(v, seed) % k. The workhorse —
  /// balances load with no structural knowledge (and, being structure-blind,
  /// maximizes cross-shard edges; see docs/ARCHITECTURE.md for the
  /// trade-off).
  static ShardPartition Hash(size_t num_nodes, uint32_t k, uint64_t seed = 0);

  /// Contiguous ranges of ceil(n / k) nodes. Generator families emit
  /// locality-correlated ids, so this is the locality-friendly baseline.
  static ShardPartition Contiguous(size_t num_nodes, uint32_t k);

  /// Structure-aware partition: condenses g to its SCC DAG, orders nodes so
  /// that each SCC's members are consecutive and SCCs appear in topological
  /// order of the condensation, then cuts that order into k balanced
  /// contiguous chunks. Cycles therefore never straddle a shard boundary
  /// (unless a single SCC outgrows a chunk), and edges — which
  /// overwhelmingly connect condensation-adjacent SCCs — mostly stay
  /// within a chunk, so boundary sets shrink on graphs whose node ids do
  /// not correlate with structure (docs/SHARDING.md). Ownership only: the
  /// ghost-label invariant is a property of how ShardView / MaterializeShard
  /// label non-owned nodes, so it holds under any ownership map, this one
  /// included.
  static ShardPartition Structure(const Graph& g, uint32_t k);
};

/// Partitioner selector shared by the CLI (`qpgc_tool --partitioner=`),
/// serve-sim, and ShardedManagerOptions.
enum class PartitionerKind {
  kHash,        ///< ShardPartition::Hash — structure-blind workhorse.
  kContiguous,  ///< ShardPartition::Contiguous — id-locality baseline.
  kStructure,   ///< ShardPartition::Structure — SCC-coarsened topo chunks.
};

/// Parses "hash" / "contiguous" / "structure"; returns false on anything
/// else (boundary-validating callers reject instead of aborting).
bool ParsePartitionerKind(const char* name, PartitionerKind* out);

/// The canonical name for `kind` (inverse of ParsePartitionerKind).
const char* PartitionerKindName(PartitionerKind kind);

/// Builds the partition `kind` over g's node universe (the graph is only
/// inspected by kStructure; the others use just the node count).
ShardPartition BuildPartition(PartitionerKind kind, const Graph& g, uint32_t k,
                              uint64_t hash_seed = 0);

/// Read-only GraphView of one shard of a base view (see file comment):
/// nodes = the full universe, edges = base edges whose source is owned,
/// labels = real for owned nodes / GhostLabel(v) for ghosts.
///
/// Out-adjacency is zero-copy (spans into the base view); in-adjacency is
/// compacted into the view at construction (one O(|V| + |E_shard|) pass —
/// a filtered subset of base in-runs cannot be exposed as a span). The view
/// references the base view and the partition; both must outlive it — GSL
/// Pointer plus the lifetimebound constructor parameters make constructing
/// one over a temporary base or partition a compile error under Clang
/// (docs/LIFETIMES.md).
template <GraphView G>
class QPGC_GSL_POINTER ShardView {
 public:
  ShardView(const G& base QPGC_LIFETIME_BOUND,
            const ShardPartition& part QPGC_LIFETIME_BOUND, uint32_t shard)
      : base_(&base), part_(&part), shard_(shard) {
    QPGC_CHECK(shard < part.num_shards);
    QPGC_CHECK(base.num_nodes() == part.num_nodes());
    const size_t n = base.num_nodes();
    // Ghost labels must stay clear of kNoLabel; real labels must stay below
    // the ghost range.
    QPGC_CHECK(n < kNoLabel - kGhostLabelBase);
    // Count shard in-degrees, then fill CSR-style in one pass. Base out-runs
    // are ascending in v for ascending u, so per-target runs stay sorted.
    in_offsets_.assign(n + 1, 0);
    size_t shard_edges = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (part.shard_of[u] != shard) continue;
      // Same precondition MaterializeShard enforces: real labels only.
      QPGC_CHECK(!IsGhostLabel(base.label(u)));
      shard_edges += base.OutDegree(u);
      for (NodeId v : base.OutNeighbors(u)) ++in_offsets_[v + 1];
    }
    for (size_t v = 1; v <= n; ++v) in_offsets_[v] += in_offsets_[v - 1];
    in_targets_.resize(shard_edges);
    std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      if (part.shard_of[u] != shard) continue;
      for (NodeId v : base.OutNeighbors(u)) in_targets_[cursor[v]++] = u;
    }
    num_edges_ = shard_edges;
  }

  size_t num_nodes() const { return base_->num_nodes(); }
  size_t num_edges() const { return num_edges_; }

  std::span<const NodeId> OutNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    if (part_->shard_of[u] != shard_) return {};
    return base_->OutNeighbors(u);
  }
  std::span<const NodeId> InNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    return {in_targets_.data() + in_offsets_[u],
            in_targets_.data() + in_offsets_[u + 1]};
  }
  size_t OutDegree(NodeId u) const {
    return part_->shard_of[u] == shard_ ? base_->OutDegree(u) : 0;
  }
  size_t InDegree(NodeId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }
  Label label(NodeId u) const {
    return part_->shard_of[u] == shard_ ? base_->label(u) : GhostLabel(u);
  }

  uint32_t shard() const { return shard_; }
  const ShardPartition& partition() const { return *part_; }

 private:
  const G* base_;
  const ShardPartition* part_;
  uint32_t shard_;
  std::vector<uint64_t> in_offsets_;  // n + 1 entries
  std::vector<NodeId> in_targets_;
  size_t num_edges_ = 0;
};

static_assert(GraphView<ShardView<Graph>>);

/// Materializes shard `shard` of `base` as a dynamic Graph (same node
/// universe, owned-source edges, ghost-label overlay) — the mutable
/// source-of-truth representation each per-shard serving writer maintains.
template <GraphView G>
Graph MaterializeShard(const G& base, const ShardPartition& part,
                       uint32_t shard) {
  QPGC_CHECK(base.num_nodes() == part.num_nodes());
  QPGC_CHECK(base.num_nodes() < kNoLabel - kGhostLabelBase);
  GraphBuilder builder(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    const bool owned = part.shard_of[v] == shard;
    QPGC_CHECK(!owned || !IsGhostLabel(base.label(v)));
    builder.SetLabel(v, owned ? base.label(v) : GhostLabel(v));
    if (owned) {
      for (NodeId w : base.OutNeighbors(v)) builder.AddEdge(v, w);
    }
  }
  return builder.Build();
}

}  // namespace qpgc

#endif  // QPGC_GRAPH_SHARD_VIEW_H_
