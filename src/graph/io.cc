// Copyright 2026 The QPGC Authors.

#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.h"

namespace qpgc {

namespace {

// Parses "u v" pairs from a stream into a builder. Returns a line number on
// failure, 0 on success.
size_t ParseEdgesInto(std::istream& in, GraphBuilder& builder) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] == '#') continue;
    unsigned long long u = 0, v = 0;
    if (std::sscanf(line.c_str() + i, "%llu %llu", &u, &v) != 2) return lineno;
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1) return lineno;
    builder.AddEdgeAutoGrow(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return 0;
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  GraphBuilder builder;
  const size_t bad_line = ParseEdgesInto(in, builder);
  if (bad_line != 0) {
    return Status::CorruptData(path + ": bad edge at line " +
                               std::to_string(bad_line));
  }
  return builder.Build();
}

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  GraphBuilder builder;
  const size_t bad_line = ParseEdgesInto(in, builder);
  if (bad_line != 0) {
    return Status::CorruptData("bad edge at line " + std::to_string(bad_line));
  }
  return builder.Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# qpgc edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  g.ForEachEdge([&](NodeId u, NodeId v) { out << u << ' ' << v << '\n'; });
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadLabels(Graph& g, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    unsigned long long u = 0, l = 0;
    if (std::sscanf(line.c_str(), "%llu %llu", &u, &l) != 2) {
      return Status::CorruptData(path + ": bad label at line " +
                                 std::to_string(lineno));
    }
    if (u >= g.num_nodes()) {
      return Status::CorruptData(path + ": node out of range at line " +
                                 std::to_string(lineno));
    }
    g.set_label(static_cast<NodeId>(u), static_cast<Label>(l));
  }
  return Status::Ok();
}

Status SaveLabels(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out << u << ' ' << g.label(u) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace qpgc
