// Copyright 2026 The QPGC Authors.

#include "graph/reduction.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/closure.h"
#include "graph/topology.h"
#include "util/bitset.h"

namespace qpgc {

namespace {

// Visits every non-self-loop edge (u, v) of `dag` together with a verdict of
// whether it is transitively redundant (another u-child reaches v).
template <typename Fn>
void ForEachEdgeWithVerdict(const Graph& dag, size_t block_cols, Fn&& fn) {
  const size_t n = dag.num_nodes();
  if (n == 0) return;
  const std::vector<NodeId> order = ReverseTopologicalOrder(dag);
  block_cols = std::min(block_cols, n);
  BitMatrix block(n, block_cols);

  for (size_t start = 0; start < n; start += block_cols) {
    const size_t cols = std::min(block_cols, n - start);
    if (cols != block.cols()) block = BitMatrix(n, cols);
    BlockDescendants(dag, order, {}, start, cols, Direction::kForward, block);

    for (NodeId u = 0; u < n; ++u) {
      const auto children = dag.OutNeighbors(u);
      for (NodeId v : children) {
        if (v == u) continue;  // self-loops handled by the caller
        if (v < start || v >= start + cols) continue;
        bool redundant = false;
        for (NodeId w : children) {
          // The self-loop "child" u and the edge's own target v are not
          // witnesses of redundancy.
          if (w == v || w == u) continue;
          if (block.Test(w, v - start)) {
            redundant = true;
            break;
          }
        }
        fn(u, v, redundant);
      }
    }
  }
}

}  // namespace

Graph TransitiveReductionDag(const Graph& dag, size_t block_cols) {
  const size_t n = dag.num_nodes();
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.SetLabel(u, dag.label(u));
    if (dag.HasEdge(u, u)) builder.AddEdge(u, u);  // self-loops preserved
  }
  ForEachEdgeWithVerdict(dag, block_cols, [&](NodeId u, NodeId v, bool red) {
    if (!red) builder.AddEdge(u, v);
  });
  return builder.Build();
}

size_t CountRedundantEdgesDag(const Graph& dag, size_t block_cols) {
  size_t count = 0;
  ForEachEdgeWithVerdict(dag, block_cols,
                         [&](NodeId, NodeId, bool red) { count += red; });
  return count;
}

}  // namespace qpgc
