// Copyright 2026 The QPGC Authors.
//
// Graph traversals and reachability primitives. These are deliberately the
// *unmodified, off-the-shelf* algorithms (BFS, bidirectional BFS, DFS): the
// paper's central claim is that exactly these algorithms run on compressed
// graphs as-is, so the same functions are used on G and on Gr throughout the
// test suite and benchmarks.
//
// Every primitive is templated over the GraphView concept, so it runs
// unchanged on the dynamic Graph and on frozen CsrGraph snapshots (and on
// ReversedView adapters). Non-template `const Graph&` overloads are kept so
// existing call sites compile the code once via the qpgc library.
//
// Path semantics: the paper defines reachability via paths, and its
// equivalence relation only works under *non-empty* paths (len >= 1); see
// DESIGN.md §2. `PathMode` makes the choice explicit.

#ifndef QPGC_GRAPH_TRAVERSAL_H_
#define QPGC_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/bitset.h"
#include "util/common.h"

namespace qpgc {

/// Reachability path semantics.
enum class PathMode {
  /// v reaches w iff there is a path of length >= 0 (v reaches itself).
  kReflexive,
  /// v reaches w iff there is a path of length >= 1. QR(v, v) is true only
  /// if v lies on a cycle.
  kNonEmpty,
};

/// Traversal direction: follow out-edges or in-edges.
enum class Direction { kForward, kBackward };

/// Distance value for unreachable nodes.
inline constexpr uint32_t kUnreachedDist = UINT32_MAX;
/// "No bound" value for bounded traversals.
inline constexpr uint32_t kUnboundedDepth = UINT32_MAX;

namespace traversal_detail {

template <GraphView G>
inline std::span<const NodeId> Neighbors(const G& g, NodeId u, Direction dir) {
  return dir == Direction::kForward ? g.OutNeighbors(u) : g.InNeighbors(u);
}

}  // namespace traversal_detail

/// Single-source BFS distances (reflexive: dist[source] = 0). Unreached
/// nodes get kUnreachedDist.
template <GraphView G>
std::vector<uint32_t> BfsDistances(const G& g, NodeId source,
                                   Direction dir = Direction::kForward) {
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachedDist);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : traversal_detail::Neighbors(g, u, dir)) {
      if (dist[v] == kUnreachedDist) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// True iff u reaches v under the given path semantics (plain BFS — the
/// paper's baseline evaluation algorithm).
template <GraphView G>
bool BfsReaches(const G& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive) {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Non-empty semantics: start the search from u's successors.
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (!visited[w]) {
      visited[w] = 1;
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    const NodeId x = queue.front();
    queue.pop_front();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!visited[w]) {
        visited[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return false;
}

/// True iff u reaches v, by bidirectional BFS (the paper's BIBFS).
template <GraphView G>
bool BidirectionalReaches(const G& g, NodeId u, NodeId v,
                          PathMode mode = PathMode::kReflexive) {
  if (mode == PathMode::kReflexive && u == v) return true;
  // Two frontiers expanded alternately, smaller first. Mark sets: 1 = reached
  // forward from u (via >= 1 edge), 2 = reached backward from v (via >= 1
  // edge). Intersection, or a direct hit of v / u, means u reaches v.
  std::vector<uint8_t> mark(g.num_nodes(), 0);
  std::deque<NodeId> fwd, bwd;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (mark[w] != 1) {
      mark[w] = 1;
      fwd.push_back(w);
    }
  }
  for (NodeId w : g.InNeighbors(v)) {
    if (w == u) return true;
    if (mark[w] == 1) return true;
    if (mark[w] != 2) {
      mark[w] = 2;
      bwd.push_back(w);
    }
  }
  while (!fwd.empty() && !bwd.empty()) {
    if (fwd.size() <= bwd.size()) {
      const size_t level = fwd.size();
      for (size_t i = 0; i < level; ++i) {
        const NodeId x = fwd.front();
        fwd.pop_front();
        for (NodeId w : g.OutNeighbors(x)) {
          if (w == v || mark[w] == 2) return true;
          if (mark[w] != 1) {
            mark[w] = 1;
            fwd.push_back(w);
          }
        }
      }
    } else {
      const size_t level = bwd.size();
      for (size_t i = 0; i < level; ++i) {
        const NodeId x = bwd.front();
        bwd.pop_front();
        for (NodeId w : g.InNeighbors(x)) {
          if (w == u || mark[w] == 1) return true;
          if (mark[w] != 2) {
            mark[w] = 2;
            bwd.push_back(w);
          }
        }
      }
    }
  }
  return false;
}

/// True iff u reaches v, by iterative DFS (a third stock algorithm; used in
/// tests to demonstrate algorithm-independence of the compression).
template <GraphView G>
bool DfsReaches(const G& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive) {
  if (mode == PathMode::kReflexive && u == v) return true;
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (!visited[w]) {
      visited[w] = 1;
      stack.push_back(w);
    }
  }
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!visited[w]) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

/// Marks every node x that has a *non-empty* path to some node in `sources`
/// (Direction::kBackward) — or from some source (kForward) — of length at
/// most `max_depth`. Sources are marked only if they lie on a suitable
/// non-empty path (e.g. a cycle through another source).
///
/// This is the workhorse of the bounded-simulation matcher: one multi-source
/// sweep decides "exists v' in S(u') with dist(v, v') <= k" for all v.
template <GraphView G>
Bitset BoundedMultiSourceReach(const G& g, std::span<const NodeId> sources,
                               uint32_t max_depth, Direction dir) {
  Bitset reached(g.num_nodes());
  if (max_depth == 0) return reached;
  const Direction step =
      dir == Direction::kBackward ? Direction::kBackward : Direction::kForward;
  std::vector<uint8_t> in_frontier(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  // Depth-0 layer: the sources themselves (not marked as reached — paths must
  // be non-empty).
  for (NodeId s : sources) {
    if (!in_frontier[s]) {
      in_frontier[s] = 1;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  for (uint32_t depth = 1; depth <= max_depth && !frontier.empty(); ++depth) {
    next.clear();
    for (NodeId x : frontier) {
      for (NodeId w : traversal_detail::Neighbors(g, x, step)) {
        if (!reached.Test(w)) {
          reached.Set(w);
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
    if (max_depth == kUnboundedDepth && frontier.empty()) break;
  }
  return reached;
}

/// All nodes with a non-empty path from u (u's descendants), as a bitset.
template <GraphView G>
Bitset Descendants(const G& g, NodeId u) {
  const NodeId src[] = {u};
  return BoundedMultiSourceReach(g, std::span<const NodeId>(src),
                                 kUnboundedDepth, Direction::kForward);
}

/// All nodes with a non-empty path to u (u's ancestors), as a bitset.
template <GraphView G>
Bitset Ancestors(const G& g, NodeId u) {
  const NodeId src[] = {u};
  return BoundedMultiSourceReach(g, std::span<const NodeId>(src),
                                 kUnboundedDepth, Direction::kBackward);
}

/// True iff node u lies on a cycle (including a self-loop).
template <GraphView G>
bool OnCycle(const G& g, NodeId u) {
  return BfsReaches(g, u, u, PathMode::kNonEmpty);
}

// Non-template overloads for the dynamic Graph (preferred by overload
// resolution; compiled once in traversal.cc).
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   Direction dir = Direction::kForward);
bool BfsReaches(const Graph& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive);
bool BidirectionalReaches(const Graph& g, NodeId u, NodeId v,
                          PathMode mode = PathMode::kReflexive);
bool DfsReaches(const Graph& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive);
Bitset BoundedMultiSourceReach(const Graph& g, std::span<const NodeId> sources,
                               uint32_t max_depth, Direction dir);
Bitset Descendants(const Graph& g, NodeId u);
Bitset Ancestors(const Graph& g, NodeId u);
bool OnCycle(const Graph& g, NodeId u);

}  // namespace qpgc

#endif  // QPGC_GRAPH_TRAVERSAL_H_
