// Copyright 2026 The QPGC Authors.
//
// Graph traversals and reachability primitives. These are deliberately the
// *unmodified, off-the-shelf* algorithms (BFS, bidirectional BFS, DFS): the
// paper's central claim is that exactly these algorithms run on compressed
// graphs as-is, so the same functions are used on G and on Gr throughout the
// test suite and benchmarks.
//
// Path semantics: the paper defines reachability via paths, and its
// equivalence relation only works under *non-empty* paths (len >= 1); see
// DESIGN.md §2. `PathMode` makes the choice explicit.

#ifndef QPGC_GRAPH_TRAVERSAL_H_
#define QPGC_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"
#include "util/common.h"

namespace qpgc {

/// Reachability path semantics.
enum class PathMode {
  /// v reaches w iff there is a path of length >= 0 (v reaches itself).
  kReflexive,
  /// v reaches w iff there is a path of length >= 1. QR(v, v) is true only
  /// if v lies on a cycle.
  kNonEmpty,
};

/// Traversal direction: follow out-edges or in-edges.
enum class Direction { kForward, kBackward };

/// Distance value for unreachable nodes.
inline constexpr uint32_t kUnreachedDist = UINT32_MAX;
/// "No bound" value for bounded traversals.
inline constexpr uint32_t kUnboundedDepth = UINT32_MAX;

/// Single-source BFS distances (reflexive: dist[source] = 0). Unreached
/// nodes get kUnreachedDist.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   Direction dir = Direction::kForward);

/// True iff u reaches v under the given path semantics (plain BFS — the
/// paper's baseline evaluation algorithm).
bool BfsReaches(const Graph& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive);

/// True iff u reaches v, by bidirectional BFS (the paper's BIBFS).
bool BidirectionalReaches(const Graph& g, NodeId u, NodeId v,
                          PathMode mode = PathMode::kReflexive);

/// True iff u reaches v, by iterative DFS (a third stock algorithm; used in
/// tests to demonstrate algorithm-independence of the compression).
bool DfsReaches(const Graph& g, NodeId u, NodeId v,
                PathMode mode = PathMode::kReflexive);

/// Marks every node x that has a *non-empty* path to some node in `sources`
/// (Direction::kBackward) — or from some source (kForward) — of length at
/// most `max_depth`. Sources are marked only if they lie on a suitable
/// non-empty path (e.g. a cycle through another source).
///
/// This is the workhorse of the bounded-simulation matcher: one multi-source
/// sweep decides "exists v' in S(u') with dist(v, v') <= k" for all v.
Bitset BoundedMultiSourceReach(const Graph& g,
                               std::span<const NodeId> sources,
                               uint32_t max_depth, Direction dir);

/// All nodes with a non-empty path from u (u's descendants), as a bitset.
Bitset Descendants(const Graph& g, NodeId u);

/// All nodes with a non-empty path to u (u's ancestors), as a bitset.
Bitset Ancestors(const Graph& g, NodeId u);

/// True iff node u lies on a cycle (including a self-loop).
bool OnCycle(const Graph& g, NodeId u);

}  // namespace qpgc

#endif  // QPGC_GRAPH_TRAVERSAL_H_
