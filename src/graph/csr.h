// Copyright 2026 The QPGC Authors.
//
// Immutable CSR (compressed sparse row) view of a graph. The dynamic Graph
// is the mutable source of truth (the incremental algorithms need cheap
// single-edge updates); the batch/serving layer wants the flat layout: one
// contiguous offsets array plus one contiguous targets array per direction,
// ~40% the memory of vector-of-vectors and materially faster to sweep.
// Freeze once, then run the whole batch pipeline (and query serving) on it.
//
// CsrGraph models the GraphView concept (graph/graph_view.h); every batch
// algorithm is templated over the concept, so Graph and CsrGraph run the
// identical code paths (differentially tested in tests/graph_view_test.cc).

#ifndef QPGC_GRAPH_CSR_H_
#define QPGC_GRAPH_CSR_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/traversal.h"
#include "util/common.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// Immutable CSR snapshot of a Graph (both directions, labels copied).
/// GSL Owner: neighbor spans point into the flat arrays this object owns —
/// valid until it is destroyed or refrozen (docs/LIFETIMES.md; the serving
/// layer keeps them valid by pinning the enclosing frozen side).
class QPGC_GSL_OWNER CsrGraph {
 public:
  /// An empty snapshot (0 nodes); a buffer to Refreeze into later.
  CsrGraph();

  /// Freezes a snapshot of g.
  explicit CsrGraph(const Graph& g);

  /// Re-freezes this snapshot from g in place, reusing the existing arrays'
  /// capacity. This is what lets a serving publish cycle recycle a retired
  /// snapshot buffer instead of paying a fresh allocation per version
  /// (serve/snapshot_manager.h); semantically identical to `*this =
  /// CsrGraph(g)`.
  void Refreeze(const Graph& g);

  /// Re-freezes this snapshot from the subgraph of g induced by the nodes
  /// with remap[v] != kInvalidNode, renumbered through remap (which must be
  /// strictly increasing over the kept nodes, so sorted adjacency stays
  /// sorted) onto [0, new_n). Edges with a dropped endpoint are dropped;
  /// when `dropped_out_edges` is non-null, every out-edge from a kept node
  /// to a dropped one is appended to it as (new source id, ORIGINAL target
  /// id) — collected in the same traversal so callers that need them (the
  /// frozen pattern side's ghost-directed cross edges, serve/snapshot.h)
  /// do not pay a second sweep. Reuses array capacity like Refreeze.
  void RefreezeMapped(
      const Graph& g, const std::vector<NodeId>& remap, size_t new_n,
      std::vector<std::pair<NodeId, NodeId>>* dropped_out_edges = nullptr);

  /// Adopts externally assembled out-direction CSR arrays (every per-node
  /// run sorted ascending and deduplicated; offsets has num_nodes + 1
  /// entries with offsets[0] == 0) plus labels, and derives the
  /// in-direction in one counting pass. This is the freeze path for code
  /// that already produces flat sorted adjacency — the router's stitched
  /// quotient assembler (serve/router.cc) — and skips the dynamic-Graph
  /// round trip of Refreeze.
  void AdoptCsr(std::vector<uint64_t> out_offsets,
                std::vector<NodeId> out_targets, std::vector<Label> labels);

  size_t num_nodes() const { return out_offsets_.size() - 1; }
  size_t num_edges() const { return out_targets_.size(); }
  /// Graph size |G| = |V| + |E| (the paper's measure).
  size_t size() const { return num_nodes() + num_edges(); }

  std::span<const NodeId> OutNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u + 1 < out_offsets_.size());
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  std::span<const NodeId> InNeighbors(NodeId u) const QPGC_LIFETIME_BOUND {
    QPGC_DCHECK(u + 1 < in_offsets_.size());
    return {in_targets_.data() + in_offsets_[u],
            in_targets_.data() + in_offsets_[u + 1]};
  }

  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(NodeId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// True iff edge (u, v) exists — binary search on the sorted target run.
  bool HasEdge(NodeId u, NodeId v) const { return ViewHasEdge(*this, u, v); }

  Label label(NodeId u) const { return labels_[u]; }
  const std::vector<Label>& labels() const QPGC_LIFETIME_BOUND {
    return labels_;
  }

  /// Dense in-edge interface (graph/graph_view.h's DenseInEdgeView): the
  /// id of u's first in-edge, and the flat source array all in-edge ids
  /// index into.
  size_t InEdgeBegin(NodeId u) const { return in_offsets_[u]; }
  std::span<const NodeId> InEdgeSources() const QPGC_LIFETIME_BOUND {
    return in_targets_;
  }

  /// The raw CSR arrays (both directions), for serialization
  /// (storage/snapshot_io.h). Offsets have num_nodes() + 1 entries.
  std::span<const uint64_t> out_offsets() const QPGC_LIFETIME_BOUND {
    return out_offsets_;
  }
  std::span<const NodeId> out_targets() const QPGC_LIFETIME_BOUND {
    return out_targets_;
  }
  std::span<const uint64_t> in_offsets() const QPGC_LIFETIME_BOUND {
    return in_offsets_;
  }
  std::span<const NodeId> in_targets() const QPGC_LIFETIME_BOUND {
    return in_targets_;
  }

  /// Number of distinct labels present (kNoLabel counts as one value if any
  /// node is unlabeled).
  size_t CountDistinctLabels() const;

  /// Calls fn(u, v) for every edge, in (u ascending, v ascending) order.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    qpgc::ForEachEdge(*this, std::forward<Fn>(fn));
  }

  /// All edges as a vector of pairs (u, v), sorted.
  std::vector<std::pair<NodeId, NodeId>> EdgeList() const;

  /// Heap bytes of the snapshot (contrast with Graph::MemoryBytes()).
  size_t MemoryBytes() const;

 private:
  std::vector<uint64_t> out_offsets_;  // n + 1 entries
  std::vector<NodeId> out_targets_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_targets_;
  std::vector<Label> labels_;
};

static_assert(GraphView<Graph>);
static_assert(GraphView<CsrGraph>);
static_assert(GraphView<ReversedView<CsrGraph>>);
static_assert(DenseInEdgeView<CsrGraph>);
static_assert(!DenseInEdgeView<Graph>);  // vector-of-vectors has no flat array

/// BFS reachability on the frozen view — the same stock algorithm as
/// BfsReaches, on the flat layout. (Kept as a named entry point; it is the
/// BfsReaches template instantiated for CsrGraph.)
bool CsrBfsReaches(const CsrGraph& g, NodeId u, NodeId v,
                   PathMode mode = PathMode::kReflexive);

}  // namespace qpgc

#endif  // QPGC_GRAPH_CSR_H_
