// Copyright 2026 The QPGC Authors.
//
// Batch updates ΔG (Section 5): a list of edge insertions and deletions,
// plus the primitives that apply them to a mutable Graph and route them
// onto a shard partition. This is the graph-mutation layer; the incremental
// *compression* problem — given G, Gr = R(G) and ΔG, compute ΔGr with
// Gr ⊕ ΔGr = R(G ⊕ ΔG) without recompressing or decompressing — lives a
// layer up in src/inc/ (tools/qpgc_lint.py enforces that batch-layer
// modules depend on this header, never on src/inc/).

#ifndef QPGC_GRAPH_UPDATE_H_
#define QPGC_GRAPH_UPDATE_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/shard_view.h"
#include "util/common.h"

namespace qpgc {

/// A single edge insertion or deletion.
struct EdgeUpdate {
  bool is_insert = true;
  NodeId u = 0;
  NodeId v = 0;

  static EdgeUpdate Insert(NodeId u, NodeId v) { return {true, u, v}; }
  static EdgeUpdate Delete(NodeId u, NodeId v) { return {false, u, v}; }

  bool operator==(const EdgeUpdate& o) const {
    return is_insert == o.is_insert && u == o.u && v == o.v;
  }
};

/// A batch ΔG of edge updates, applied in order.
struct UpdateBatch {
  std::vector<EdgeUpdate> updates;

  void Insert(NodeId u, NodeId v) { updates.push_back(EdgeUpdate::Insert(u, v)); }
  void Delete(NodeId u, NodeId v) { updates.push_back(EdgeUpdate::Delete(u, v)); }

  size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }
  size_t NumInsertions() const {
    size_t c = 0;
    for (const auto& e : updates) c += e.is_insert;
    return c;
  }
  size_t NumDeletions() const { return size() - NumInsertions(); }
};

/// Applies `batch` to g in order and returns the *effective* batch: no-op
/// updates (inserting an existing edge, deleting a missing one, or pairs
/// that cancel within the batch) are dropped. All incremental algorithms
/// take the effective batch together with the post-update graph.
UpdateBatch ApplyBatch(Graph& g, const UpdateBatch& batch);

/// Routes a batch onto a node partition: update (u, v) belongs to the shard
/// owning u, because that shard's local graph carries all out-edges of u
/// (edge-cut by source; graph/shard_view.h). Returns one sub-batch per
/// shard, each preserving the original update order — applying sub-batch s
/// to shard s's local graph for every s reproduces exactly the global
/// post-batch edge set, since per-shard edge sets are disjoint by source.
std::vector<UpdateBatch> SplitBatchByShard(const UpdateBatch& batch,
                                           const ShardPartition& part);

}  // namespace qpgc

#endif  // QPGC_GRAPH_UPDATE_H_
