// Copyright 2026 The QPGC Authors.
//
// Plain-text graph I/O:
//  * Edge-list format (SNAP-compatible): one "u v" pair per line; lines
//    starting with '#' are comments.
//  * Label format: one "u label" pair per line.
// These are the formats the paper's datasets ship in, so a user with the
// real SNAP files can load them directly.

#ifndef QPGC_GRAPH_IO_H_
#define QPGC_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace qpgc {

/// Loads a graph from a SNAP-style edge list file.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes a graph as an edge list (with a header comment).
Status SaveEdgeList(const Graph& g, const std::string& path);

/// Loads node labels ("u label" per line) into an existing graph.
Status LoadLabels(Graph& g, const std::string& path);

/// Writes node labels ("u label" per line).
Status SaveLabels(const Graph& g, const std::string& path);

/// Parses an edge list from a string (for tests).
Result<Graph> ParseEdgeList(const std::string& text);

}  // namespace qpgc

#endif  // QPGC_GRAPH_IO_H_
