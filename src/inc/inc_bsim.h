// Copyright 2026 The QPGC Authors.
//
// IncBsim: the single-update incremental bisimulation baseline of the
// paper's Fig. 12(g) (after Saha, FSTTCS 2007). It maintains the quotient
// by invoking the incremental machinery once per update instead of once per
// batch — no cross-update redundancy elimination (minDelta) and one
// affected-cone recomputation per edge, which is exactly why incPCM's batch
// processing outperforms it.

#ifndef QPGC_INC_INC_BSIM_H_
#define QPGC_INC_INC_BSIM_H_

#include "core/pattern_scheme.h"
#include "inc/inc_pcm.h"
#include "graph/update.h"

namespace qpgc {

/// Applies `batch` to g one update at a time, maintaining pc after each
/// single update. g must be the *pre-update* graph; on return it equals the
/// post-update graph. Returns aggregate statistics. `engine` threads through
/// to each per-update re-converge (see IncPCM).
IncPcmStats IncBsim(Graph& g, const UpdateBatch& batch, PatternCompression& pc,
                    BisimEngine engine = BisimEngine::kPaigeTarjan);

}  // namespace qpgc

#endif  // QPGC_INC_INC_BSIM_H_
