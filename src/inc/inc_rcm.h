// Copyright 2026 The QPGC Authors.
//
// incRCM (Section 5.1): incremental maintenance of the reachability
// preserving compression under batch updates. The problem is unbounded even
// for unit updates (Theorem 6, by reduction from single-source
// reachability), so no algorithm can run in time f(|AFF|); the paper's — and
// our — goal is cost that depends on |AFF| and |Gr| but never on |G|.
//
// Algorithm (hybrid-graph formulation of the paper's Split/Merge scheme;
// DESIGN.md §3 records the supporting facts):
//
//  1. *Reduce ΔG.* No-op updates were already removed by ApplyBatch. For
//     insertion-only batches, an insertion (u, u') with [u] already reaching
//     [u'] in Gr (non-empty closure, self-loops included) changes no
//     reachability and is dropped — the paper's redundancy rule. (The
//     paper's deletion rules need member-level adjacency beyond Gr, so we
//     apply only provably sound reductions.)
//  2. *Affected classes.* Insertions can split only the endpoint classes
//     (for any other class, members with equal closures keep equal closures
//     — the "gateway" argument). Deletions can split ancestors of [u] and
//     descendants of [u'], computed over the closure of Gr *plus* the
//     batch's class-level insertions (the union graph), which
//     over-approximates every intermediate state.
//  3. *Hybrid graph H.* Frozen classes stay as supernodes carrying their
//     (transitively reduced, closure-faithful) Gr edges; affected classes
//     dissolve into their members, which contribute their real post-update
//     adjacency. |H| = O(|Gr| + |AFF|), independent of |G|.
//  4. *Recompress H.* Reachability equivalence on H coincides with the
//     node-level relation (frozen classes never split; every merge —
//     including SCC formation across frozen classes — is visible at the
//     H level because member sets are disjoint). Running compressR on H and
//     translating member sets yields exactly R(G ⊕ ΔG).
//
// The only O(|V|) work is the final dense re-map of node ids into the
// artifact; every super-linear step is bounded by |AFF| and |Gr|.

#ifndef QPGC_INC_INC_RCM_H_
#define QPGC_INC_INC_RCM_H_

#include <cstddef>

#include "graph/update.h"
#include "reach/compress_r.h"

namespace qpgc {

/// Work counters for one incremental maintenance call.
struct IncRcmStats {
  /// Updates surviving redundancy reduction.
  size_t kept_updates = 0;
  /// Updates dropped by the Gr-closure redundancy rule.
  size_t reduced_updates = 0;
  /// Classes dissolved into members (the affected area's class side).
  size_t dissolved_classes = 0;
  /// Cyclic classes handled as a single aggregated vertex with refreshed
  /// class-level edges (members of an intact SCC can never diverge, so no
  /// dissolution is needed).
  size_t aggregated_classes = 0;
  /// Original nodes inside dissolved classes.
  size_t dissolved_nodes = 0;
  /// Vertices/edges of the hybrid graph actually recompressed.
  size_t hybrid_vertices = 0;
  size_t hybrid_edges = 0;

  /// Size of the dirty cone this call touched, in hybrid-graph units
  /// (|AFF|-bounded — never a function of |G|). The serving layer accumulates
  /// this across the batches applied since the last publish to decide when a
  /// snapshot has drifted far enough to be worth re-freezing.
  size_t DirtyConeSize() const { return hybrid_vertices + hybrid_edges; }

  /// Folds another call's counters into this one (aggregate-since-publish
  /// bookkeeping in serve/snapshot_manager.h).
  void Accumulate(const IncRcmStats& o) {
    kept_updates += o.kept_updates;
    reduced_updates += o.reduced_updates;
    dissolved_classes += o.dissolved_classes;
    aggregated_classes += o.aggregated_classes;
    dissolved_nodes += o.dissolved_nodes;
    hybrid_vertices += o.hybrid_vertices;
    hybrid_edges += o.hybrid_edges;
  }
};

/// Maintains rc (the compression of the pre-update graph) so that afterwards
/// rc == CompressR(g_after) up to class numbering. `g_after` must already
/// have the batch applied; `effective` is ApplyBatch's return value.
IncRcmStats IncRCM(const Graph& g_after, const UpdateBatch& effective,
                   ReachCompression& rc);

}  // namespace qpgc

#endif  // QPGC_INC_INC_RCM_H_
