// Copyright 2026 The QPGC Authors.

#include "inc/inc_rcm.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "graph/builder.h"
#include "graph/closure.h"
#include "graph/traversal.h"
#include "util/hash.h"

namespace qpgc {

namespace {

using EdgeSet = std::unordered_set<std::pair<NodeId, NodeId>, PairHash>;

// Budget-capped BFS in `g`: true iff `from` reaches `to` via a non-empty
// path that avoids every edge in `forbidden`. Used as a *sound* redundancy
// test against the post-update graph: a confirmed alternate path means the
// update changes no closure anywhere; an exhausted budget simply keeps the
// update. In SCC-heavy graphs (the paper's social networks) this discharges
// the bulk of a random batch.
//
// `forbidden` is what makes chains of mutually-justifying insertions sound:
// when testing an insertion, all batch insertions not yet *kept* are
// forbidden, so a witness can only use pre-existing or definitely-kept
// edges (a dropped edge may never justify dropping another).
bool BoundedAltReach(const Graph& g, NodeId from, NodeId to,
                     const EdgeSet& forbidden, size_t budget,
                     std::vector<uint32_t>& stamp, uint32_t& stamp_gen) {
  ++stamp_gen;
  std::deque<NodeId> queue;
  size_t visited = 0;
  const auto blocked = [&](NodeId x, NodeId w) {
    return !forbidden.empty() && forbidden.contains({x, w});
  };
  const auto expand = [&](NodeId x) -> bool {
    for (NodeId w : g.OutNeighbors(x)) {
      if (blocked(x, w)) continue;
      if (w == to) return true;
      if (stamp[w] != stamp_gen) {
        stamp[w] = stamp_gen;
        queue.push_back(w);
        ++visited;
      }
    }
    return false;
  };
  if (expand(from)) return true;
  while (!queue.empty() && visited < budget) {
    const NodeId x = queue.front();
    queue.pop_front();
    if (expand(x)) return true;
  }
  return false;
}

}  // namespace

IncRcmStats IncRCM(const Graph& g_after, const UpdateBatch& effective,
                   ReachCompression& rc) {
  IncRcmStats stats;
  if (effective.empty()) return stats;
  QPGC_CHECK(g_after.num_nodes() == rc.original_num_nodes);

  const size_t nc = rc.members.size();
  const size_t n = g_after.num_nodes();

  // Step 1: redundancy reduction against the post-update graph. An
  // insertion (u, u') with an alternate u -> u' path (not using the new
  // edge, nor any undecided inserted edge) adds no reachability; a deletion
  // (u, u') whose endpoints stay connected in g_after removes none (and the
  // witness may freely use inserted edges — adding an edge between already
  // connected endpoints changes nothing, by induction over the dropped
  // set). Both tests are exact when they fire and merely conservative when
  // the budget runs out.
  std::vector<uint32_t> stamp(n, 0);
  uint32_t stamp_gen = 0;
  constexpr size_t kInsertBudget = 256;
  constexpr size_t kDeleteBudget = 1024;
  EdgeSet undecided_inserts;
  for (const EdgeUpdate& up : effective.updates) {
    if (up.is_insert) undecided_inserts.insert({up.u, up.v});
  }
  static const EdgeSet kNoForbidden;
  std::vector<EdgeUpdate> kept;
  kept.reserve(effective.size());
  for (const EdgeUpdate& up : effective.updates) {
    bool redundant;
    if (up.is_insert) {
      redundant = BoundedAltReach(g_after, up.u, up.v, undecided_inserts,
                                  kInsertBudget, stamp, stamp_gen);
      undecided_inserts.erase({up.u, up.v});
      if (redundant) undecided_inserts.insert({up.u, up.v});  // stays unusable
    } else {
      redundant = BoundedAltReach(g_after, up.u, up.v, kNoForbidden,
                                  kDeleteBudget, stamp, stamp_gen);
    }
    if (redundant) {
      ++stats.reduced_updates;
    } else {
      kept.push_back(up);
    }
  }
  stats.kept_updates = kept.size();
  if (kept.empty()) {
    // Quotient and reduction are functions of the closure, which is
    // unchanged.
    rc.original_size = g_after.size();
    return stats;
  }

  // Step 2: the affected area, at three granularities.
  //  * Insertion endpoints dissolve as singletons: the remaining members of
  //    their class keep their (identical, unchanged-so-far) closure and
  //    stay as a rest-supernode. Exact because trivial classes have no
  //    internal edges, and a cyclic class minus one member remains mutually
  //    reachable through the graph.
  //  * Deletion cones (ancestors of [u], descendants of [u'] over the
  //    quotient plus inserted class edges — an over-approximation of every
  //    intermediate state): a *trivial* class there may genuinely diverge
  //    member-by-member and dissolves; a *cyclic* class with intact
  //    internals cannot diverge (members reach each other, so every
  //    external loss is shared) — it is "aggregated": one vertex whose
  //    class-level edges are refreshed from its members' real adjacency.
  //  * A class containing a deleted *internal* edge must re-derive its SCC
  //    structure and dissolves.
  enum class Mode : uint8_t { kFrozen, kAggregate, kDissolve };
  std::vector<Mode> mode(nc, Mode::kFrozen);
  std::vector<uint8_t> node_dissolved(n, 0);

  const bool has_deletions =
      std::any_of(kept.begin(), kept.end(),
                  [](const EdgeUpdate& e) { return !e.is_insert; });
  if (has_deletions) {
    Graph union_q = rc.quotient;
    std::vector<NodeId> del_sources, del_targets;
    std::vector<uint8_t> internal_deletion(nc, 0);
    for (const EdgeUpdate& up : kept) {
      if (up.is_insert) {
        union_q.AddEdge(rc.node_map[up.u], rc.node_map[up.v]);
      } else {
        const NodeId cu = rc.node_map[up.u];
        const NodeId cv = rc.node_map[up.v];
        del_sources.push_back(cu);
        del_targets.push_back(cv);
        if (cu == cv) internal_deletion[cu] = 1;
      }
    }
    // One multi-source sweep per direction covers all deletions at once.
    const Bitset ancestors = BoundedMultiSourceReach(
        union_q, del_sources, kUnboundedDepth, Direction::kBackward);
    const Bitset descendants = BoundedMultiSourceReach(
        union_q, del_targets, kUnboundedDepth, Direction::kForward);
    const auto mark = [&](NodeId c) {
      mode[c] = rc.cyclic[c] && !internal_deletion[c] ? Mode::kAggregate
                                                      : Mode::kDissolve;
    };
    for (NodeId x = 0; x < nc; ++x) {
      if (ancestors.Test(x) || descendants.Test(x)) mark(x);
    }
    for (size_t i = 0; i < del_sources.size(); ++i) {
      mark(del_sources[i]);
      mark(del_targets[i]);
    }
  }
  for (const EdgeUpdate& up : kept) {
    if (up.is_insert) {
      node_dissolved[up.u] = 1;
      node_dissolved[up.v] = 1;
    }
  }
  for (NodeId c = 0; c < nc; ++c) {
    if (mode[c] == Mode::kDissolve) {
      ++stats.dissolved_classes;
      for (NodeId v : rc.members[c]) node_dissolved[v] = 1;
    } else if (mode[c] == Mode::kAggregate) {
      ++stats.aggregated_classes;
    }
  }

  // Step 3: hybrid graph H.
  //  * Frozen classes with surviving members: supernode + unreduced
  //    quotient edges (edge-faithful: their members' edges are untouched).
  //  * Aggregated classes: supernode + edges re-derived from surviving
  //    members' real post-update adjacency.
  //  * Dissolved members: individual vertices with real adjacency; their
  //    in-edges from surviving classes are attached at the supernode level.
  std::vector<NodeId> class_h(nc, kInvalidNode);
  NodeId nh = 0;
  for (NodeId c = 0; c < nc; ++c) {
    size_t rest = 0;
    for (NodeId v : rc.members[c]) rest += !node_dissolved[v];
    if (rest > 0) class_h[c] = nh++;
  }
  std::vector<NodeId> member_of_h;
  std::vector<NodeId> node_h(n, kInvalidNode);
  for (NodeId c = 0; c < nc; ++c) {
    for (NodeId v : rc.members[c]) {
      if (!node_dissolved[v]) continue;
      node_h[v] = nh + static_cast<NodeId>(member_of_h.size());
      member_of_h.push_back(v);
    }
  }
  stats.dissolved_nodes = member_of_h.size();

  GraphBuilder hb(nh + member_of_h.size());
  const auto target_vertex = [&](NodeId w) {
    return node_dissolved[w] ? node_h[w] : class_h[rc.node_map[w]];
  };
  rc.quotient.ForEachEdge([&](NodeId c, NodeId d) {
    if (mode[c] != Mode::kFrozen) return;  // aggregates re-derive below
    if (class_h[c] != kInvalidNode && class_h[d] != kInvalidNode) {
      hb.AddEdge(class_h[c], class_h[d]);
    }
  });
  for (NodeId c = 0; c < nc; ++c) {
    if (mode[c] != Mode::kAggregate || class_h[c] == kInvalidNode) continue;
    for (NodeId m : rc.members[c]) {
      if (node_dissolved[m]) continue;
      for (NodeId w : g_after.OutNeighbors(m)) {
        hb.AddEdge(class_h[c], target_vertex(w));
      }
    }
  }
  for (NodeId v : member_of_h) {
    const NodeId hv = node_h[v];
    for (NodeId w : g_after.OutNeighbors(v)) hb.AddEdge(hv, target_vertex(w));
    for (NodeId a : g_after.InNeighbors(v)) {
      if (!node_dissolved[a]) hb.AddEdge(class_h[rc.node_map[a]], hv);
    }
  }
  const Graph h = hb.Build();
  stats.hybrid_vertices = h.num_nodes();
  stats.hybrid_edges = h.num_edges();

  // Step 4: recompress the hybrid graph and translate back.
  ReachCompression sub = CompressR(h);

  ReachCompression next;
  next.gr = std::move(sub.gr);
  next.quotient = std::move(sub.quotient);
  next.cyclic = std::move(sub.cyclic);
  next.ranks = std::move(sub.ranks);
  next.original_num_nodes = rc.original_num_nodes;
  next.original_size = g_after.size();
  next.members.assign(next.gr.num_nodes(), {});
  next.node_map.assign(n, kInvalidNode);
  for (NodeId hv = 0; hv < h.num_nodes(); ++hv) {
    if (hv < nh) continue;  // rest-supernodes are spliced below
    const NodeId cls = sub.node_map[hv];
    const NodeId v = member_of_h[hv - nh];
    next.node_map[v] = cls;
    next.members[cls].push_back(v);
  }
  for (NodeId c = 0; c < nc; ++c) {
    if (class_h[c] == kInvalidNode) continue;
    const NodeId cls = sub.node_map[class_h[c]];
    for (NodeId v : rc.members[c]) {
      if (node_dissolved[v]) continue;
      next.node_map[v] = cls;
      next.members[cls].push_back(v);
    }
  }
  for (auto& m : next.members) std::sort(m.begin(), m.end());

  rc = std::move(next);
  return stats;
}

}  // namespace qpgc
