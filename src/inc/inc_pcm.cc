// Copyright 2026 The QPGC Authors.

#include "inc/inc_pcm.h"

#include <algorithm>
#include <unordered_set>

#include "graph/builder.h"
#include "util/hash.h"

namespace qpgc {

IncPcmStats IncPCM(const Graph& g_after, const UpdateBatch& effective,
                   PatternCompression& pc, BisimEngine engine) {
  IncPcmStats stats;
  if (effective.empty()) {
    return stats;
  }
  QPGC_CHECK(g_after.num_nodes() == pc.original_num_nodes);
  const size_t nb = pc.members.size();

  // Edges inserted by this batch (to recognize pre-existing children).
  std::unordered_set<std::pair<NodeId, NodeId>, PairHash> inserted;
  for (const EdgeUpdate& up : effective.updates) {
    if (up.is_insert) inserted.insert({up.u, up.v});
  }

  // Step 1: minDelta. (u, w) is redundant iff u has another surviving,
  // pre-existing child w'' in w's pre-update block — then u's successor
  // block set is unchanged.
  std::vector<EdgeUpdate> kept;
  kept.reserve(effective.size());
  for (const EdgeUpdate& up : effective.updates) {
    const NodeId target_block = pc.node_map[up.v];
    bool redundant = false;
    for (NodeId w2 : g_after.OutNeighbors(up.u)) {
      if (w2 == up.v) continue;
      if (pc.node_map[w2] != target_block) continue;
      if (inserted.contains({up.u, w2})) continue;  // not pre-existing
      redundant = true;
      break;
    }
    if (redundant) {
      ++stats.reduced_updates;
    } else {
      kept.push_back(up);
    }
  }
  stats.kept_updates = kept.size();
  if (kept.empty()) {
    pc.original_size = g_after.size();
    return stats;
  }

  // Step 2: the affected cone — predecessor closure in Gr of the kept
  // updates' source blocks.
  std::vector<uint8_t> dissolved(nb, 0);
  {
    std::vector<NodeId> stack;
    for (const EdgeUpdate& up : kept) {
      const NodeId root = pc.node_map[up.u];
      if (!dissolved[root]) {
        dissolved[root] = 1;
        stack.push_back(root);
      }
    }
    while (!stack.empty()) {
      const NodeId b = stack.back();
      stack.pop_back();
      for (NodeId p : pc.gr.InNeighbors(b)) {
        if (!dissolved[p]) {
          dissolved[p] = 1;
          stack.push_back(p);
        }
      }
    }
  }

  // Step 3: hybrid graph. Frozen supers keep labels and quotient edges;
  // dissolved members carry their own labels and real out-adjacency.
  std::vector<NodeId> block_h(nb, kInvalidNode);
  NodeId nh = 0;
  for (NodeId b = 0; b < nb; ++b) {
    if (!dissolved[b]) block_h[b] = nh++;
  }
  std::vector<NodeId> member_of_h;
  std::vector<NodeId> node_h(g_after.num_nodes(), kInvalidNode);
  std::vector<NodeId> dissolved_blocks;
  for (NodeId b = 0; b < nb; ++b) {
    if (!dissolved[b]) continue;
    dissolved_blocks.push_back(b);
    ++stats.dissolved_blocks;
    for (NodeId v : pc.members[b]) {
      node_h[v] = nh + static_cast<NodeId>(member_of_h.size());
      member_of_h.push_back(v);
    }
  }
  stats.dissolved_nodes = member_of_h.size();

  GraphBuilder hb(nh + member_of_h.size());
  for (NodeId b = 0; b < nb; ++b) {
    if (!dissolved[b]) hb.SetLabel(block_h[b], pc.gr.label(b));
  }
  for (NodeId v : member_of_h) hb.SetLabel(node_h[v], g_after.label(v));

  pc.gr.ForEachEdge([&](NodeId b, NodeId d) {
    if (dissolved[b]) return;  // dissolved blocks contribute member edges
    // The cone is predecessor-closed: a frozen block cannot point into it.
    QPGC_CHECK(!dissolved[d]);
    hb.AddEdge(block_h[b], block_h[d]);
  });
  for (NodeId v : member_of_h) {
    for (NodeId w : g_after.OutNeighbors(v)) {
      const NodeId bw = pc.node_map[w];
      hb.AddEdge(node_h[v], dissolved[bw] ? node_h[w] : block_h[bw]);
    }
  }
  const Graph h = hb.Build();
  stats.hybrid_vertices = h.num_nodes();
  stats.hybrid_edges = h.num_edges();

  // Step 4: maximum bisimulation of the hybrid graph, translated back.
  const Partition part = MaxBisimulation(h, engine);

  PatternCompression next;
  next.original_num_nodes = pc.original_num_nodes;
  next.original_size = g_after.size();
  next.node_map.assign(pc.original_num_nodes, kInvalidNode);
  next.members.assign(part.num_blocks, {});

  GraphBuilder grb(part.num_blocks);
  for (NodeId hv = 0; hv < h.num_nodes(); ++hv) {
    grb.SetLabel(part.block_of[hv], h.label(hv));
  }
  h.ForEachEdge([&](NodeId x, NodeId y) {
    grb.AddEdge(part.block_of[x], part.block_of[y]);
  });
  next.gr = grb.Build();

#ifndef NDEBUG
  // Two frozen supers can never be bisimilar (their unfoldings were distinct
  // pre-update and are untouched).
  {
    std::vector<uint8_t> seen(part.num_blocks, 0);
    for (NodeId hv = 0; hv < nh; ++hv) {
      QPGC_CHECK(!seen[part.block_of[hv]]);
      seen[part.block_of[hv]] = 1;
    }
  }
#endif

  for (NodeId hv = 0; hv < h.num_nodes(); ++hv) {
    if (hv < nh) continue;
    const NodeId v = member_of_h[hv - nh];
    next.node_map[v] = part.block_of[hv];
    next.members[part.block_of[hv]].push_back(v);
  }
  for (NodeId b = 0; b < nb; ++b) {
    if (dissolved[b]) continue;
    const NodeId cls = part.block_of[block_h[b]];
    for (NodeId v : pc.members[b]) {
      next.node_map[v] = cls;
      next.members[cls].push_back(v);
    }
  }
  for (auto& m : next.members) std::sort(m.begin(), m.end());

  pc = std::move(next);
  return stats;
}

}  // namespace qpgc
