// Copyright 2026 The QPGC Authors.
//
// incPCM (Section 5.2): incremental maintenance of the pattern preserving
// compression (the bisimulation quotient) under batch updates. Also
// unbounded for unit updates (Theorem 8).
//
// Structure (hybrid-graph formulation of the paper's PT + SplitMerge;
// supporting facts in DESIGN.md §3):
//
//  1. *minDelta.* An insertion or deletion (u, w) is redundant when u keeps
//     another pre-existing, surviving child w'' in w's pre-update block: the
//     successor-*block set* of u — all bisimulation cares about — is then
//     unchanged (the paper's insertion/deletion rules; the cancellation rule
//     falls out of ApplyBatch's no-op elimination).
//  2. *Affected cone.* A node's bisimulation class is a function of the
//     subgraph reachable from it, so only blocks that can reach a kept
//     update's source — the predecessor cone of the root blocks in Gr — can
//     change. Everything else is frozen. A frozen block, in particular, can
//     never point into the cone (the cone is predecessor-closed), so the
//     hybrid graph needs no super-to-member edges.
//  3. *Hybrid graph H.* Frozen blocks become labeled supernodes with their
//     quotient edges (exact, because a stable partition's quotient reflects
//     every member's successor-block set); cone blocks dissolve into their
//     members with real post-update out-adjacency.
//  4. *Rank-stratified refinement on H* yields the maximum bisimulation;
//     frozen supers never merge with each other (their unfoldings were
//     distinct and are untouched), while dissolved members may join a
//     frozen super's class. Translating member sets gives R(G ⊕ ΔG).

#ifndef QPGC_INC_INC_PCM_H_
#define QPGC_INC_INC_PCM_H_

#include <cstddef>

#include "bisim/engine.h"
#include "core/pattern_scheme.h"
#include "graph/update.h"

namespace qpgc {

/// Work counters for one incPCM call.
struct IncPcmStats {
  size_t kept_updates = 0;
  size_t reduced_updates = 0;  // dropped by minDelta
  size_t dissolved_blocks = 0;
  size_t dissolved_nodes = 0;
  size_t hybrid_vertices = 0;
  size_t hybrid_edges = 0;

  /// Size of the dirty cone this call touched, in hybrid-graph units (see
  /// IncRcmStats::DirtyConeSize).
  size_t DirtyConeSize() const { return hybrid_vertices + hybrid_edges; }

  /// Folds another call's counters into this one (aggregate-since-publish
  /// bookkeeping in serve/snapshot_manager.h).
  void Accumulate(const IncPcmStats& o) {
    kept_updates += o.kept_updates;
    reduced_updates += o.reduced_updates;
    dissolved_blocks += o.dissolved_blocks;
    dissolved_nodes += o.dissolved_nodes;
    hybrid_vertices += o.hybrid_vertices;
    hybrid_edges += o.hybrid_edges;
  }
};

/// Maintains pc (compression of the pre-update graph) so that afterwards
/// pc == CompressB(g_after) up to block numbering. `g_after` must already
/// have the batch applied; `effective` is ApplyBatch's return value.
/// `engine` chooses the maximum-bisimulation engine the hybrid-graph
/// re-converge step runs (every engine yields the same quotient).
IncPcmStats IncPCM(const Graph& g_after, const UpdateBatch& effective,
                   PatternCompression& pc,
                   BisimEngine engine = BisimEngine::kPaigeTarjan);

}  // namespace qpgc

#endif  // QPGC_INC_INC_PCM_H_
