// Copyright 2026 The QPGC Authors.

#include "inc/inc_bsim.h"

namespace qpgc {

IncPcmStats IncBsim(Graph& g, const UpdateBatch& batch, PatternCompression& pc,
                    BisimEngine engine) {
  IncPcmStats total;
  for (const EdgeUpdate& up : batch.updates) {
    UpdateBatch single;
    single.updates.push_back(up);
    const UpdateBatch effective = ApplyBatch(g, single);
    const IncPcmStats s = IncPCM(g, effective, pc, engine);
    total.kept_updates += s.kept_updates;
    total.reduced_updates += s.reduced_updates;
    total.dissolved_blocks += s.dissolved_blocks;
    total.dissolved_nodes += s.dissolved_nodes;
    total.hybrid_vertices += s.hybrid_vertices;
    total.hybrid_edges += s.hybrid_edges;
  }
  return total;
}

}  // namespace qpgc
