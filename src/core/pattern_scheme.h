// Copyright 2026 The QPGC Authors.
//
// compressB (Section 4): graph pattern preserving compression <R, F, P>.
//   R — quotient of G by the maximum bisimulation Rb (labels preserved; all
//       quotient edges kept — the quotient is *stable*: every member of a
//       block has a successor in each successor block).
//   F — the identity: the same pattern query runs on Gr.
//   P — hypernode expansion: replace each [v] in the match by its members,
//       linear in the answer size. Boolean queries need no P.
// Theorem 4: Qp(G) = P(Qp(Gr)) for every bounded-simulation pattern.

#ifndef QPGC_CORE_PATTERN_SCHEME_H_
#define QPGC_CORE_PATTERN_SCHEME_H_

#include <cstddef>
#include <vector>

#include "bisim/engine.h"
#include "bisim/partition.h"
#include "graph/graph.h"
#include "pattern/match.h"
#include "pattern/pattern.h"

namespace qpgc {

/// Options for compressB.
struct CompressBOptions {
  /// Which maximum-bisimulation engine computes the partition (see
  /// bisim/engine.h; every engine yields the identical quotient).
  BisimEngine engine = BisimEngine::kPaigeTarjan;
};

/// The pattern preserving compression artifact.
struct PatternCompression {
  /// The compressed graph Gr: quotient by Rb, labels preserved.
  Graph gr;
  /// node_map[v] = R(v), the Gr-node (bisimulation block) of node v.
  std::vector<NodeId> node_map;
  /// members[c] = original nodes of block c (the inverse index P uses).
  std::vector<std::vector<NodeId>> members;
  /// |V| and |G| of the original, for ratio reporting.
  size_t original_num_nodes = 0;
  size_t original_size = 0;

  size_t size() const { return gr.size(); }
  /// PCr = |Gr| / |G|.
  double CompressionRatio() const {
    return original_size == 0 ? 1.0
                              : static_cast<double>(size()) /
                                    static_cast<double>(original_size);
  }
  size_t MemoryBytes() const;
};

/// Computes Gr = R(G) via the maximum bisimulation.
PatternCompression CompressB(const Graph& g, const CompressBOptions& options = {});

/// Builds the compression from a precomputed bisimulation partition (used by
/// the incremental algorithm and tests).
PatternCompression CompressBFromPartition(const Graph& g, const Partition& p);

/// The post-processing function P: expands every block in a match over Gr
/// into its member nodes. O(|Qp(G)|).
MatchResult ExpandMatch(const PatternCompression& pc, const MatchResult& on_gr);

/// Convenience: evaluate a pattern on the compressed graph (F = identity,
/// then Match on Gr, then P).
MatchResult MatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q);

/// Boolean pattern query on the compressed graph — no P needed.
bool BooleanMatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q);

}  // namespace qpgc

#endif  // QPGC_CORE_PATTERN_SCHEME_H_
