// Copyright 2026 The QPGC Authors.
//
// compressB (Section 4): graph pattern preserving compression <R, F, P>.
//   R — quotient of G by the maximum bisimulation Rb (labels preserved; all
//       quotient edges kept — the quotient is *stable*: every member of a
//       block has a successor in each successor block).
//   F — the identity: the same pattern query runs on Gr.
//   P — hypernode expansion: replace each [v] in the match by its members,
//       linear in the answer size. Boolean queries need no P.
// Theorem 4: Qp(G) = P(Qp(Gr)) for every bounded-simulation pattern.
//
// The compression pipeline is a GraphView template; the `const Graph&`
// entry point freezes a CsrGraph snapshot once and runs both the partition
// refinement and the quotient construction on the flat layout.

#ifndef QPGC_CORE_PATTERN_SCHEME_H_
#define QPGC_CORE_PATTERN_SCHEME_H_

#include <cstddef>
#include <span>
#include <vector>

#include "bisim/engine.h"
#include "bisim/max_bisimulation.h"
#include "bisim/partition.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "pattern/match.h"
#include "pattern/pattern.h"
#include "util/bitset.h"

namespace qpgc {

/// Options for compressB.
struct CompressBOptions {
  /// Which maximum-bisimulation engine computes the partition (see
  /// bisim/engine.h; every engine yields the identical quotient).
  BisimEngine engine = BisimEngine::kPaigeTarjan;
};

/// The pattern preserving compression artifact.
struct PatternCompression {
  /// The compressed graph Gr: quotient by Rb, labels preserved.
  Graph gr;
  /// node_map[v] = R(v), the Gr-node (bisimulation block) of node v.
  std::vector<NodeId> node_map;
  /// members[c] = original nodes of block c (the inverse index P uses).
  std::vector<std::vector<NodeId>> members;
  /// |V| and |G| of the original, for ratio reporting.
  size_t original_num_nodes = 0;
  size_t original_size = 0;

  size_t size() const { return gr.size(); }
  /// PCr = |Gr| / |G|.
  double CompressionRatio() const {
    return original_size == 0 ? 1.0
                              : static_cast<double>(size()) /
                                    static_cast<double>(original_size);
  }
  size_t MemoryBytes() const;
};

/// Builds the compression from a precomputed bisimulation partition (used by
/// the incremental algorithm and tests).
template <GraphView G>
PatternCompression CompressBFromPartition(const G& g, const Partition& p) {
  PatternCompression pc;
  pc.original_num_nodes = g.num_nodes();
  pc.original_size = ViewSize(g);
  pc.node_map = p.block_of;
  pc.members.assign(p.num_blocks, {});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    pc.members[p.block_of[v]].push_back(v);
  }

  GraphBuilder builder(p.num_blocks);
  for (NodeId c = 0; c < p.num_blocks; ++c) {
    QPGC_CHECK(!pc.members[c].empty());
    builder.SetLabel(static_cast<NodeId>(c), g.label(pc.members[c][0]));
  }
  ForEachEdge(g, [&](NodeId u, NodeId v) {
    builder.AddEdge(p.block_of[u], p.block_of[v]);
  });
  pc.gr = builder.Build();
  return pc;
}

/// Computes Gr = R(G) via the maximum bisimulation, on any view.
template <GraphView G>
PatternCompression CompressB(const G& g, const CompressBOptions& options = {}) {
  return CompressBFromPartition(g, MaxBisimulation(g, options.engine));
}

// Non-template Graph entry points (compiled once in pattern_scheme.cc).
// CompressB freezes a CsrGraph snapshot and runs the pipeline on it.
PatternCompression CompressBFromPartition(const Graph& g, const Partition& p);
PatternCompression CompressB(const Graph& g, const CompressBOptions& options = {});

/// The post-processing function P over any member representation: expands
/// the block-level match `on_gr` through `members_of` (block id -> range of
/// member node ids, used only for size pre-reservation) and `node_map`
/// (node -> block; kInvalidNode marks nodes outside every expandable block
/// — sharded serving's ghost nodes). Member lists are disjoint sorted runs,
/// so one block-mask pass over the node map emits each answer set in
/// ascending order without a comparison sort. O(|Qp(G)| + |V|) per call.
/// This single implementation serves both the artifact-level overloads
/// below (vector-of-vectors member index) and the frozen serving snapshot
/// (flattened member index; serve/snapshot.cc).
template <typename MembersFn>
MatchResult ExpandMatchWith(size_t num_blocks, std::span<const NodeId> node_map,
                            MembersFn&& members_of,
                            const MatchResult& on_gr) {
  MatchResult expanded;
  expanded.matched = on_gr.matched;
  // P expands the answer sets only; the fixpoint stays at block granularity
  // (an evaluation-internal artifact, copied through for callers that want
  // the raw fixpoint).
  expanded.fixpoint_sets = on_gr.fixpoint_sets;
  expanded.match_sets.resize(on_gr.match_sets.size());
  Bitset block_mask(num_blocks);
  for (size_t u = 0; u < on_gr.match_sets.size(); ++u) {
    size_t total = 0;
    for (const NodeId block : on_gr.match_sets[u]) {
      QPGC_CHECK(block < num_blocks);
      block_mask.Set(block);
      total += members_of(block).size();
    }
    auto& out = expanded.match_sets[u];
    out.reserve(total);
    if (total > 0) {
      for (NodeId v = 0; v < node_map.size(); ++v) {
        if (node_map[v] != kInvalidNode && block_mask.Test(node_map[v])) {
          out.push_back(v);
        }
      }
    }
    for (const NodeId block : on_gr.match_sets[u]) block_mask.Clear(block);
  }
  return expanded;
}

/// P from a batch compression artifact. O(|Qp(G)|).
MatchResult ExpandMatch(const PatternCompression& pc, const MatchResult& on_gr);

/// Same P from the raw quotient metadata (member index + node map) instead
/// of a PatternCompression (used by the incremental layer and tests).
MatchResult ExpandMatch(const std::vector<std::vector<NodeId>>& members,
                        const std::vector<NodeId>& node_map,
                        const MatchResult& on_gr);

/// Convenience: evaluate a pattern on the compressed graph (F = identity,
/// then Match on Gr, then P).
MatchResult MatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q);

/// Boolean pattern query on the compressed graph — no P needed.
bool BooleanMatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q);

}  // namespace qpgc

#endif  // QPGC_CORE_PATTERN_SCHEME_H_
