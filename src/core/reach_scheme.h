// Copyright 2026 The QPGC Authors.
//
// The <R, F> facade for reachability preserving compression (Theorem 2):
// compression is quadratic-time (our implementation is faster in practice),
// rewriting is O(1), and no post-processing is needed. This class is the
// user-facing entry point; the pieces live in reach/.

#ifndef QPGC_CORE_REACH_SCHEME_H_
#define QPGC_CORE_REACH_SCHEME_H_

#include "reach/compress_r.h"
#include "reach/queries.h"
#include "util/lifetime_annotations.h"

namespace qpgc {

/// One-stop reachability preserving compression of a graph.
class ReachabilityPreservingCompression {
 public:
  /// Compresses g (runs compressR). Out of line: this is the scheme's one
  /// expensive entry point, and keeping it in reach_scheme.cc keeps the
  /// facade header cheap to include.
  explicit ReachabilityPreservingCompression(
      const Graph& g, const CompressROptions& options = {});

  /// The query rewriting function F (O(1)).
  RewrittenReachQuery Rewrite(const ReachQuery& q) const {
    return RewriteReachQuery(rc_, q);
  }

  /// Answers QR(u, v) on the compressed graph with a stock algorithm.
  bool Answer(const ReachQuery& q, PathMode mode = PathMode::kReflexive,
              ReachAlgorithm algo = ReachAlgorithm::kBfs) const {
    return AnswerOnCompressed(rc_, q, mode, algo);
  }

  /// The compression artifact (Gr, node map, member index, ranks).
  const ReachCompression& artifact() const QPGC_LIFETIME_BOUND { return rc_; }
  ReachCompression& mutable_artifact() QPGC_LIFETIME_BOUND { return rc_; }

  double CompressionRatio() const { return rc_.CompressionRatio(); }

 private:
  ReachCompression rc_;
};

}  // namespace qpgc

#endif  // QPGC_CORE_REACH_SCHEME_H_
