// Copyright 2026 The QPGC Authors.
//
// Persistence for compression artifacts. The whole point of query
// preserving compression is "compress once, query forever": a deployment
// compresses offline, ships the artifact, and serves queries from it — so
// artifacts must round-trip through storage. Plain-text, versioned format:
//
//   qpgc-reach-v2                      qpgc-pattern-v1
//   <num_classes> <num_nodes>          <num_blocks> <num_nodes>
//   <Gr edge count> + edge lines       <Gr edge count> + edge lines\n//   <quotient edge count> + edges
//   node_map line (|V| ints)           labels line (one per block)
//   cyclic line (one per class)        node_map line (|V| ints)
//   ranks line  (one per class)
//
// Member lists are rebuilt from the node map on load.

#ifndef QPGC_CORE_SERIALIZATION_H_
#define QPGC_CORE_SERIALIZATION_H_

#include <string>

#include "core/pattern_scheme.h"
#include "reach/compress_r.h"
#include "util/status.h"

namespace qpgc {

/// Writes a reachability compression artifact.
Status SaveReachCompression(const ReachCompression& rc,
                            const std::string& path);

/// Reads a reachability compression artifact.
Result<ReachCompression> LoadReachCompression(const std::string& path);

/// Writes a pattern compression artifact.
Status SavePatternCompression(const PatternCompression& pc,
                              const std::string& path);

/// Reads a pattern compression artifact.
Result<PatternCompression> LoadPatternCompression(const std::string& path);

}  // namespace qpgc

#endif  // QPGC_CORE_SERIALIZATION_H_
