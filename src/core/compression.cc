// Copyright 2026 The QPGC Authors.

#include "core/compression.h"

namespace qpgc {

double CompressionReport::ratio() const {
  return original_size() == 0 ? 1.0
                              : static_cast<double>(compressed_size()) /
                                    static_cast<double>(original_size());
}

}  // namespace qpgc
