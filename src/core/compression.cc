// Copyright 2026 The QPGC Authors.

#include "core/compression.h"

namespace qpgc {}  // namespace qpgc
