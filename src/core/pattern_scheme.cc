// Copyright 2026 The QPGC Authors.

#include "core/pattern_scheme.h"

#include <algorithm>

#include "bisim/engine.h"
#include "util/bitset.h"
#include "graph/builder.h"
#include "util/memory.h"

namespace qpgc {

PatternCompression CompressBFromPartition(const Graph& g, const Partition& p) {
  PatternCompression pc;
  pc.original_num_nodes = g.num_nodes();
  pc.original_size = g.size();
  pc.node_map = p.block_of;
  pc.members.assign(p.num_blocks, {});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    pc.members[p.block_of[v]].push_back(v);
  }

  GraphBuilder builder(p.num_blocks);
  for (NodeId c = 0; c < p.num_blocks; ++c) {
    QPGC_CHECK(!pc.members[c].empty());
    builder.SetLabel(static_cast<NodeId>(c), g.label(pc.members[c][0]));
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    builder.AddEdge(p.block_of[u], p.block_of[v]);
  });
  pc.gr = builder.Build();
  return pc;
}

PatternCompression CompressB(const Graph& g, const CompressBOptions& options) {
  return CompressBFromPartition(g, MaxBisimulation(g, options.engine));
}

MatchResult ExpandMatch(const PatternCompression& pc, const MatchResult& on_gr) {
  MatchResult expanded;
  expanded.matched = on_gr.matched;
  // P is linear in the answer (Theorem 4): expand the answer sets only. The
  // fixpoint sets stay at block granularity (they are an evaluation-internal
  // artifact; copy them through for callers that want the raw fixpoint).
  expanded.fixpoint_sets = on_gr.fixpoint_sets;
  expanded.match_sets.resize(on_gr.match_sets.size());
  // Member lists are disjoint sorted runs; a block-id mask plus one pass
  // over the node map emits each answer set in ascending order without a
  // comparison sort.
  Bitset block_mask(pc.members.size());
  for (size_t u = 0; u < on_gr.match_sets.size(); ++u) {
    size_t total = 0;
    for (NodeId block : on_gr.match_sets[u]) {
      QPGC_CHECK(block < pc.members.size());
      block_mask.Set(block);
      total += pc.members[block].size();
    }
    auto& out = expanded.match_sets[u];
    out.reserve(total);
    if (total > 0) {
      for (NodeId v = 0; v < pc.node_map.size(); ++v) {
        if (block_mask.Test(pc.node_map[v])) out.push_back(v);
      }
    }
    for (NodeId block : on_gr.match_sets[u]) block_mask.Clear(block);
  }
  return expanded;
}

MatchResult MatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return ExpandMatch(pc, Match(pc.gr, q));
}

bool BooleanMatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return BooleanMatch(pc.gr, q);
}

size_t PatternCompression::MemoryBytes() const {
  return gr.MemoryBytes() + VectorBytes(node_map) + NestedVectorBytes(members);
}

}  // namespace qpgc
