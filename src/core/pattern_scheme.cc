// Copyright 2026 The QPGC Authors.

#include "core/pattern_scheme.h"

#include <algorithm>

#include "graph/csr.h"
#include "util/bitset.h"
#include "util/memory.h"

namespace qpgc {

PatternCompression CompressBFromPartition(const Graph& g, const Partition& p) {
  return CompressBFromPartition<Graph>(g, p);
}

PatternCompression CompressB(const Graph& g, const CompressBOptions& options) {
  // Freeze once, sweep flat: partition refinement and quotient construction
  // are read-only over adjacency.
  const CsrGraph frozen(g);
  return CompressB<CsrGraph>(frozen, options);
}

MatchResult ExpandMatch(const PatternCompression& pc, const MatchResult& on_gr) {
  return ExpandMatch(pc.members, pc.node_map, on_gr);
}

MatchResult ExpandMatch(const std::vector<std::vector<NodeId>>& members,
                        const std::vector<NodeId>& node_map,
                        const MatchResult& on_gr) {
  MatchResult expanded;
  expanded.matched = on_gr.matched;
  // P is linear in the answer (Theorem 4): expand the answer sets only. The
  // fixpoint sets stay at block granularity (they are an evaluation-internal
  // artifact; copy them through for callers that want the raw fixpoint).
  expanded.fixpoint_sets = on_gr.fixpoint_sets;
  expanded.match_sets.resize(on_gr.match_sets.size());
  // Member lists are disjoint sorted runs; a block-id mask plus one pass
  // over the node map emits each answer set in ascending order without a
  // comparison sort.
  Bitset block_mask(members.size());
  for (size_t u = 0; u < on_gr.match_sets.size(); ++u) {
    size_t total = 0;
    for (NodeId block : on_gr.match_sets[u]) {
      QPGC_CHECK(block < members.size());
      block_mask.Set(block);
      total += members[block].size();
    }
    auto& out = expanded.match_sets[u];
    out.reserve(total);
    if (total > 0) {
      for (NodeId v = 0; v < node_map.size(); ++v) {
        if (block_mask.Test(node_map[v])) out.push_back(v);
      }
    }
    for (NodeId block : on_gr.match_sets[u]) block_mask.Clear(block);
  }
  return expanded;
}

MatchResult MatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return ExpandMatch(pc, Match(pc.gr, q));
}

bool BooleanMatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return BooleanMatch(pc.gr, q);
}

size_t PatternCompression::MemoryBytes() const {
  return gr.MemoryBytes() + VectorBytes(node_map) + NestedVectorBytes(members);
}

}  // namespace qpgc
