// Copyright 2026 The QPGC Authors.

#include "core/pattern_scheme.h"

#include <algorithm>

#include "graph/csr.h"
#include "util/bitset.h"
#include "util/memory.h"

namespace qpgc {

PatternCompression CompressBFromPartition(const Graph& g, const Partition& p) {
  return CompressBFromPartition<Graph>(g, p);
}

PatternCompression CompressB(const Graph& g, const CompressBOptions& options) {
  // Freeze once, sweep flat: partition refinement and quotient construction
  // are read-only over adjacency.
  const CsrGraph frozen(g);
  return CompressB<CsrGraph>(frozen, options);
}

MatchResult ExpandMatch(const PatternCompression& pc, const MatchResult& on_gr) {
  return ExpandMatch(pc.members, pc.node_map, on_gr);
}

MatchResult ExpandMatch(const std::vector<std::vector<NodeId>>& members,
                        const std::vector<NodeId>& node_map,
                        const MatchResult& on_gr) {
  return ExpandMatchWith(
      members.size(), node_map,
      [&](NodeId block) -> const std::vector<NodeId>& {
        return members[block];
      },
      on_gr);
}

MatchResult MatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return ExpandMatch(pc, Match(pc.gr, q));
}

bool BooleanMatchOnCompressed(const PatternCompression& pc,
                              const PatternQuery& q) {
  return BooleanMatch(pc.gr, q);
}

size_t PatternCompression::MemoryBytes() const {
  return gr.MemoryBytes() + VectorBytes(node_map) + NestedVectorBytes(members);
}

}  // namespace qpgc
