// Copyright 2026 The QPGC Authors.
//
// The query preserving compression framework of Section 2.2. For a query
// class Q, a compression is a triple <R, F, P>:
//
//   R : Graph -> Graph          (compression;  Gr = R(G), |Gr| <= |G|)
//   F : Q -> Q                  (query rewriting;  Q' = F(Q))
//   P : answers -> answers      (post-processing;  Q(G) = P(Q'(Gr)))
//
// with the defining property that *any* algorithm evaluating Q-queries runs
// on Gr unchanged. The two instantiations live in reach_scheme.h
// (reachability; P not needed, Theorem 2) and pattern_scheme.h (bounded
// simulation; P expands hypernodes, Theorem 4).
//
// This header carries the shared reporting vocabulary.

#ifndef QPGC_CORE_COMPRESSION_H_
#define QPGC_CORE_COMPRESSION_H_

#include <cstddef>
#include <string>

namespace qpgc {

/// A compression measurement for one graph (used by the Table 1/2 benches).
struct CompressionReport {
  std::string dataset;
  size_t original_nodes = 0;
  size_t original_edges = 0;
  size_t compressed_nodes = 0;
  size_t compressed_edges = 0;
  double seconds = 0.0;

  size_t original_size() const { return original_nodes + original_edges; }
  size_t compressed_size() const { return compressed_nodes + compressed_edges; }
  /// The paper's compression ratio |Gr| / |G| (smaller is better).
  double ratio() const;
};

}  // namespace qpgc

#endif  // QPGC_CORE_COMPRESSION_H_
