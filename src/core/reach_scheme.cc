// Copyright 2026 The QPGC Authors.

#include "core/reach_scheme.h"

namespace qpgc {}  // namespace qpgc
