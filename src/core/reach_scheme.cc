// Copyright 2026 The QPGC Authors.

#include "core/reach_scheme.h"

namespace qpgc {

ReachabilityPreservingCompression::ReachabilityPreservingCompression(
    const Graph& g, const CompressROptions& options)
    : rc_(CompressR(g, options)) {}

}  // namespace qpgc
