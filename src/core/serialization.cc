// Copyright 2026 The QPGC Authors.

#include "core/serialization.h"

#include <fstream>

namespace qpgc {

namespace {

constexpr char kReachMagic[] = "qpgc-reach-v2";
constexpr char kPatternMagic[] = "qpgc-pattern-v1";

void WriteGraphEdges(std::ostream& out, const Graph& g) {
  out << g.num_edges() << "\n";
  g.ForEachEdge([&](NodeId u, NodeId v) { out << u << ' ' << v << "\n"; });
}

// Reads `count` whitespace-separated integers into out.
template <typename T>
bool ReadInts(std::istream& in, size_t count, std::vector<T>& out) {
  out.resize(count);
  for (size_t i = 0; i < count; ++i) {
    long long x;
    if (!(in >> x)) return false;
    out[i] = static_cast<T>(x);
  }
  return true;
}

bool ReadGraphEdges(std::istream& in, Graph& g) {
  size_t edges;
  if (!(in >> edges)) return false;
  for (size_t i = 0; i < edges; ++i) {
    NodeId u, v;
    if (!(in >> u >> v)) return false;
    if (u >= g.num_nodes() || v >= g.num_nodes()) return false;
    if (!g.AddEdge(u, v)) return false;
  }
  return true;
}

template <typename T>
void WriteLine(std::ostream& out, const std::vector<T>& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    out << (i ? " " : "") << static_cast<long long>(v[i]);
  }
  out << "\n";
}

std::vector<std::vector<NodeId>> MembersFromNodeMap(
    const std::vector<NodeId>& node_map, size_t num_classes) {
  std::vector<std::vector<NodeId>> members(num_classes);
  for (NodeId v = 0; v < node_map.size(); ++v) {
    members[node_map[v]].push_back(v);
  }
  return members;
}

}  // namespace

Status SaveReachCompression(const ReachCompression& rc,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << kReachMagic << "\n";
  out << rc.gr.num_nodes() << ' ' << rc.node_map.size() << ' '
      << rc.original_size << "\n";
  WriteGraphEdges(out, rc.gr);
  WriteGraphEdges(out, rc.quotient);
  WriteLine(out, rc.node_map);
  WriteLine(out, rc.cyclic);
  WriteLine(out, rc.ranks);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<ReachCompression> LoadReachCompression(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  if (!(in >> magic) || magic != kReachMagic) {
    return Status::CorruptData(path + ": bad magic");
  }
  size_t num_classes, num_nodes, original_size;
  if (!(in >> num_classes >> num_nodes >> original_size)) {
    return Status::CorruptData(path + ": bad header");
  }
  ReachCompression rc;
  rc.gr = Graph(num_classes);
  rc.quotient = Graph(num_classes);
  rc.original_num_nodes = num_nodes;
  rc.original_size = original_size;
  if (!ReadGraphEdges(in, rc.gr) || !ReadGraphEdges(in, rc.quotient) ||
      !ReadInts(in, num_nodes, rc.node_map) ||
      !ReadInts(in, num_classes, rc.cyclic) ||
      !ReadInts(in, num_classes, rc.ranks)) {
    return Status::CorruptData(path + ": truncated artifact");
  }
  for (NodeId c : rc.node_map) {
    if (c >= num_classes) {
      return Status::CorruptData(path + ": node map out of range");
    }
  }
  rc.members = MembersFromNodeMap(rc.node_map, num_classes);
  return rc;
}

Status SavePatternCompression(const PatternCompression& pc,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << kPatternMagic << "\n";
  out << pc.gr.num_nodes() << ' ' << pc.node_map.size() << ' '
      << pc.original_size << "\n";
  WriteGraphEdges(out, pc.gr);
  WriteLine(out, pc.gr.labels());
  WriteLine(out, pc.node_map);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<PatternCompression> LoadPatternCompression(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  if (!(in >> magic) || magic != kPatternMagic) {
    return Status::CorruptData(path + ": bad magic");
  }
  size_t num_blocks, num_nodes, original_size;
  if (!(in >> num_blocks >> num_nodes >> original_size)) {
    return Status::CorruptData(path + ": bad header");
  }
  PatternCompression pc;
  pc.gr = Graph(num_blocks);
  pc.original_num_nodes = num_nodes;
  pc.original_size = original_size;
  std::vector<Label> labels;
  if (!ReadGraphEdges(in, pc.gr) || !ReadInts(in, num_blocks, labels) ||
      !ReadInts(in, num_nodes, pc.node_map)) {
    return Status::CorruptData(path + ": truncated artifact");
  }
  for (NodeId b = 0; b < num_blocks; ++b) pc.gr.set_label(b, labels[b]);
  for (NodeId b : pc.node_map) {
    if (b >= num_blocks) {
      return Status::CorruptData(path + ": node map out of range");
    }
  }
  pc.members = MembersFromNodeMap(pc.node_map, num_blocks);
  return pc;
}

}  // namespace qpgc
