// Copyright 2026 The QPGC Authors.
//
// 2-hop reachability labeling (Cohen, Halperin, Kaplan & Zwick, SICOMP
// 2003), the index of the paper's Fig. 12(d) memory experiment. Every node
// gets two landmark lists Lout(v) (landmarks v reaches) and Lin(v)
// (landmarks reaching v); QR(u, w) holds iff the lists intersect (or one
// endpoint covers the other).
//
// Construction uses pruned landmark labeling (processing nodes in
// descending degree order and pruning BFS subtrees already covered by
// earlier landmarks) on the SCC condensation — exact, and a practical
// stand-in for the original biquadratic greedy set-cover construction.
//
// The paper's point, which tests/two_hop_test.cc and the bench reproduce:
// the index applies *unchanged* to compressed graphs, and building it on Gr
// costs a fraction of building it on G.

#ifndef QPGC_INDEX_TWO_HOP_H_
#define QPGC_INDEX_TWO_HOP_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace qpgc {

/// A 2-hop reachability index over a fixed graph.
class TwoHopIndex {
 public:
  /// Builds the index for g.
  static TwoHopIndex Build(const Graph& g);

  /// Answers QR(u, v) from labels only (no graph traversal).
  bool Reaches(NodeId u, NodeId v, PathMode mode = PathMode::kReflexive) const;

  /// Total number of label entries (the classical 2-hop size measure).
  size_t LabelEntries() const;

  /// Heap bytes of the index (Fig. 12(d)).
  size_t MemoryBytes() const;

 private:
  TwoHopIndex() = default;

  // Label query on condensation nodes: cu reaches cw via some shared
  // landmark (reflexive over DAG nodes).
  bool DagReaches(NodeId cu, NodeId cw) const;

  std::vector<NodeId> comp_;            // node -> condensation node
  std::vector<uint8_t> cyclic_;         // condensation node -> cyclic
  std::vector<std::vector<NodeId>> out_labels_;  // DAG node -> landmarks
  std::vector<std::vector<NodeId>> in_labels_;
};

}  // namespace qpgc

#endif  // QPGC_INDEX_TWO_HOP_H_
