// Copyright 2026 The QPGC Authors.

#include "index/two_hop.h"

#include <algorithm>
#include <numeric>

#include "graph/condensation.h"
#include "util/memory.h"

namespace qpgc {

namespace {

// Sorted-list intersection test.
bool Intersect(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

TwoHopIndex TwoHopIndex::Build(const Graph& g) {
  TwoHopIndex idx;
  const Condensation cond = BuildCondensation(g);
  const Graph& dag = cond.dag;
  const size_t nc = cond.scc.num_components;

  idx.comp_ = cond.scc.component;
  idx.cyclic_.assign(cond.scc.cyclic.begin(), cond.scc.cyclic.end());
  idx.out_labels_.assign(nc, {});
  idx.in_labels_.assign(nc, {});

  // Landmarks in descending (in+1)*(out+1) degree order: high-coverage hubs
  // first maximizes pruning.
  std::vector<NodeId> order(nc);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> score(nc);
  for (NodeId c = 0; c < nc; ++c) {
    score[c] = static_cast<uint64_t>(dag.OutDegree(c) + 1) *
               static_cast<uint64_t>(dag.InDegree(c) + 1);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return score[a] > score[b]; });

  std::vector<NodeId> queue;
  std::vector<uint8_t> visited(nc, 0);
  for (const NodeId l : order) {
    // Forward pruned BFS: l is recorded as an in-label of every DAG node it
    // reaches and that is not already covered.
    for (int dir = 0; dir < 2; ++dir) {
      queue.clear();
      std::fill(visited.begin(), visited.end(), 0);
      queue.push_back(l);
      visited[l] = 1;
      for (size_t i = 0; i < queue.size(); ++i) {
        const NodeId x = queue[i];
        if (x != l) {
          const bool covered =
              dir == 0 ? idx.DagReaches(l, x) : idx.DagReaches(x, l);
          if (covered) continue;  // prune: do not label, do not expand
          if (dir == 0) {
            idx.in_labels_[x].push_back(l);
          } else {
            idx.out_labels_[x].push_back(l);
          }
        }
        const auto nbrs =
            dir == 0 ? dag.OutNeighbors(x) : dag.InNeighbors(x);
        for (NodeId w : nbrs) {
          if (!visited[w]) {
            visited[w] = 1;
            queue.push_back(w);
          }
        }
      }
    }
  }
  // Landmarks label themselves so intersection covers landmark endpoints.
  for (NodeId c = 0; c < nc; ++c) {
    idx.out_labels_[c].push_back(c);
    idx.in_labels_[c].push_back(c);
    std::sort(idx.out_labels_[c].begin(), idx.out_labels_[c].end());
    std::sort(idx.in_labels_[c].begin(), idx.in_labels_[c].end());
  }
  return idx;
}

bool TwoHopIndex::DagReaches(NodeId cu, NodeId cw) const {
  if (cu == cw) return true;
  // During construction labels are unsorted; fall back to linear probes.
  for (NodeId l : out_labels_[cu]) {
    if (l == cw) return true;
  }
  for (NodeId l : in_labels_[cw]) {
    if (l == cu) return true;
  }
  for (NodeId l : out_labels_[cu]) {
    for (NodeId m : in_labels_[cw]) {
      if (l == m) return true;
    }
  }
  return false;
}

bool TwoHopIndex::Reaches(NodeId u, NodeId v, PathMode mode) const {
  const NodeId cu = comp_[u];
  const NodeId cv = comp_[v];
  if (cu == cv) {
    return mode == PathMode::kReflexive ? true : cyclic_[cu] != 0;
  }
  if (std::binary_search(out_labels_[cu].begin(), out_labels_[cu].end(), cv))
    return true;
  if (std::binary_search(in_labels_[cv].begin(), in_labels_[cv].end(), cu))
    return true;
  return Intersect(out_labels_[cu], in_labels_[cv]);
}

size_t TwoHopIndex::LabelEntries() const {
  size_t total = 0;
  for (const auto& l : out_labels_) total += l.size();
  for (const auto& l : in_labels_) total += l.size();
  return total;
}

size_t TwoHopIndex::MemoryBytes() const {
  return VectorBytes(comp_) + VectorBytes(cyclic_) +
         NestedVectorBytes(out_labels_) + NestedVectorBytes(in_labels_);
}

}  // namespace qpgc
