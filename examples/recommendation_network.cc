// Copyright 2026 The QPGC Authors.
//
// The paper's running example (Fig. 2): a multi-agent recommendation
// network with book server agents (BSA), music shop agents (MSA),
// facilitator agents (FA) and customers (C). A bookstore owner asks for
// BSAs that reach customers within 2 hops, where those customers interact
// with facilitators — a bounded-simulation pattern query. The example walks
// through both compressions of the paper on this network.
//
//   $ ./recommendation_network

#include <cstdio>

#include "core/pattern_scheme.h"
#include "core/reach_scheme.h"
#include "pattern/match.h"
#include "reach/equivalence.h"

using namespace qpgc;

namespace {
constexpr Label BSA = 0, MSA = 1, FA = 2, C = 3;
const char* kLabelNames[] = {"BSA", "MSA", "FA", "C"};
const char* kNodeNames[] = {"BSA1", "BSA2", "MSA1", "MSA2", "FA1", "FA2",
                            "FA3",  "FA4",  "C1",   "C2",   "C3",  "C4",
                            "C5"};
}  // namespace

int main() {
  Graph g(std::vector<Label>{BSA, BSA, MSA, MSA, FA, FA, FA, FA, C, C, C, C,
                             C});
  const NodeId bsa1 = 0, bsa2 = 1, msa1 = 2, msa2 = 3;
  const NodeId fa1 = 4, fa2 = 5, fa3 = 6, fa4 = 7;
  const NodeId c1 = 8, c2 = 9, c3 = 10, c4 = 11;
  for (NodeId b : {bsa1, bsa2}) {
    g.AddEdge(b, msa1);
    g.AddEdge(b, msa2);
    g.AddEdge(b, c1);
    g.AddEdge(b, c2);
  }
  g.AddEdge(c1, fa1);
  g.AddEdge(fa1, c1);
  g.AddEdge(c2, fa2);
  g.AddEdge(fa2, c2);
  g.AddEdge(fa3, c3);
  g.AddEdge(fa4, c4);

  std::printf("recommendation network: %s\n\n", g.DebugString().c_str());

  // --- Example 1: the bookstore owner's pattern query --------------------
  PatternQuery qp;
  const uint32_t q_bsa = qp.AddNode(BSA);
  const uint32_t q_c = qp.AddNode(C);
  const uint32_t q_fa = qp.AddNode(FA);
  qp.AddEdge(q_bsa, q_c, 2);  // customers within 2 hops of the BSA
  qp.AddEdge(q_c, q_fa, 1);   // customers interact with FAs...
  qp.AddEdge(q_fa, q_c, 1);   // ...in both directions

  const MatchResult direct = Match(g, qp);
  std::printf("pattern query on G: matched=%s\n",
              direct.matched ? "yes" : "no");
  for (uint32_t u = 0; u < qp.num_nodes(); ++u) {
    std::printf("  %s matches:", kLabelNames[qp.label(u)]);
    for (NodeId v : direct.match_sets[u]) std::printf(" %s", kNodeNames[v]);
    std::printf("\n");
  }

  // --- Example 5: the same query through the compressed graph ------------
  const PatternCompression pc = CompressB(g);
  std::printf("\npattern-preserving compression: %zu nodes -> %zu hypernodes"
              " (Fig. 2's {BSA, MSA, FA, FA', C, C'})\n",
              g.num_nodes(), pc.gr.num_nodes());
  const MatchResult via_gr = MatchOnCompressed(pc, qp);
  std::printf("Match(Gr) + P gives the identical answer: %s\n",
              via_gr.match_sets == direct.match_sets ? "yes" : "NO (bug!)");

  // --- Examples 2-3: reachability equivalence and QR through Gr ----------
  const ReachPartition re = ComputeReachEquivalence(g);
  std::printf("\nreachability equivalence (Example 2):\n");
  std::printf("  BSA1 ~ BSA2: %s\n",
              re.class_of[bsa1] == re.class_of[bsa2] ? "yes" : "no");
  std::printf("  MSA1 ~ MSA2: %s\n",
              re.class_of[msa1] == re.class_of[msa2] ? "yes" : "no");
  std::printf("  FA3  ~ FA4 : %s (FA3 reaches C3, FA4 does not)\n",
              re.class_of[fa3] == re.class_of[fa4] ? "yes" : "no");

  const ReachabilityPreservingCompression reach(g);
  std::printf("\nreachability compression: |G| = %zu -> |Gr| = %zu\n",
              g.size(), reach.artifact().size());
  std::printf("QR(BSA1, FA2) via Gr: %s (Example: BSA1 -> C2 -> FA2)\n",
              reach.Answer({bsa1, fa2}) ? "true" : "false");
  std::printf("QR(FA4, C3) via Gr: %s\n",
              reach.Answer({fa4, c3}) ? "true" : "false");
  return 0;
}
