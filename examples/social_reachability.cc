// Copyright 2026 The QPGC Authors.
//
// Reachability analytics over a social network — the workload the paper's
// introduction motivates ("can user u's posts reach user w?"). Loads the
// socEpinions stand-in (or a SNAP edge-list file if you pass a path),
// compresses it once, then serves reachability queries from the compressed
// graph with plain BFS and with a 2-hop index built directly on Gr.
//
//   $ ./social_reachability [edge_list_file]

#include <cstdio>

#include "core/reach_scheme.h"
#include "gen/dataset_catalog.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "index/two_hop.h"
#include "util/memory.h"
#include "util/timer.h"

using namespace qpgc;

int main(int argc, char** argv) {
  Graph g;
  if (argc > 1) {
    auto loaded = LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    std::printf("loaded %s: %s\n", argv[1], g.DebugString().c_str());
  } else {
    g = MakeDataset(FindDataset("socEpinions"));
    std::printf("socEpinions stand-in: %s\n", g.DebugString().c_str());
  }
  std::printf("%s\n\n", FormatStats(ComputeStats(g)).c_str());

  // Compress once; queries from now on never touch G.
  Timer t;
  const ReachabilityPreservingCompression scheme(g);
  const ReachCompression& rc = scheme.artifact();
  std::printf("compressR: %.1fms;  |G| = %zu -> |Gr| = %zu  (RCr = %.2f%%)\n",
              t.ElapsedMillis(), g.size(), rc.size(),
              rc.CompressionRatio() * 100);
  std::printf("memory: G = %s, Gr = %s\n",
              FormatBytes(g.MemoryBytes()).c_str(),
              FormatBytes(rc.gr.MemoryBytes()).c_str());

  // Serve a query mix two ways: BFS on Gr, and a 2-hop index built ON Gr
  // (the paper's point: index techniques apply to compressed graphs as-is).
  const auto queries = RandomReachQueries(g.num_nodes(), 2000, 17);

  t.Restart();
  size_t reachable = 0;
  for (const auto& q : queries) reachable += scheme.Answer(q);
  const double bfs_ms = t.ElapsedMillis();

  t.Restart();
  const TwoHopIndex idx = TwoHopIndex::Build(rc.gr);
  const double build_ms = t.ElapsedMillis();
  t.Restart();
  size_t reachable2 = 0;
  for (const auto& q : queries) {
    reachable2 += q.u == q.v || idx.Reaches(rc.node_map[q.u], rc.node_map[q.v],
                                            PathMode::kNonEmpty);
  }
  const double idx_ms = t.ElapsedMillis();

  std::printf("\n2000 queries, %zu reachable\n", reachable);
  std::printf("  BFS on Gr:        %8.2fms\n", bfs_ms);
  std::printf("  2-hop on Gr:      %8.2fms  (index built in %.1fms, %s)\n",
              idx_ms, build_ms, FormatBytes(idx.MemoryBytes()).c_str());
  if (reachable != reachable2) {
    std::printf("ERROR: BFS and 2-hop disagree!\n");
    return 1;
  }
  std::printf("both evaluation strategies agree on every query.\n");
  return 0;
}
