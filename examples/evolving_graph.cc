// Copyright 2026 The QPGC Authors.
//
// Maintaining compressed graphs on an evolving network (Section 5): a P2P
// overlay keeps churning — peers join and leave, links appear and vanish —
// while both compressed views stay exact via incRCM / incPCM, without ever
// recompressing from scratch. Every few rounds the example cross-checks
// against a batch recompute.
//
//   $ ./evolving_graph

#include <cstdio>

#include "core/pattern_scheme.h"
#include "gen/dataset_catalog.h"
#include "gen/update_gen.h"
#include "inc/inc_pcm.h"
#include "inc/inc_rcm.h"
#include "reach/compress_r.h"
#include "reach/queries.h"
#include "util/timer.h"

using namespace qpgc;

int main() {
  Graph g = MakeDataset(FindDataset("P2P"));
  std::printf("P2P overlay: %s\n", g.DebugString().c_str());

  ReachCompression rc = CompressR(g);
  PatternCompression pc = CompressB(g);
  std::printf("initial: |Gr_reach| = %zu (RCr %.2f%%), |Gr_pattern| = %zu "
              "(PCr %.2f%%)\n\n",
              rc.size(), rc.CompressionRatio() * 100, pc.size(),
              pc.CompressionRatio() * 100);

  std::printf("%5s %8s %8s | %10s %10s | %10s %10s\n", "round", "ins", "del",
              "incRCM", "RCr", "incPCM", "PCr");
  for (int round = 1; round <= 10; ++round) {
    // Churn: ~1% of edges replaced per round.
    const size_t churn = g.num_edges() / 100;
    UpdateBatch batch = RandomInsertions(g, churn, 500 + round);
    const UpdateBatch dels = RandomDeletions(g, churn, 900 + round);
    batch.updates.insert(batch.updates.end(), dels.updates.begin(),
                         dels.updates.end());
    const UpdateBatch effective = ApplyBatch(g, batch);

    Timer t;
    IncRCM(g, effective, rc);
    const double rcm_ms = t.ElapsedMillis();
    t.Restart();
    IncPCM(g, effective, pc);
    const double pcm_ms = t.ElapsedMillis();

    std::printf("%5d %8zu %8zu | %8.1fms %9.2f%% | %8.1fms %9.2f%%\n", round,
                effective.NumInsertions(), effective.NumDeletions(), rcm_ms,
                rc.CompressionRatio() * 100, pcm_ms,
                pc.CompressionRatio() * 100);

    if (round % 5 == 0) {
      // Cross-check against batch recompression.
      const ReachCompression batch_rc = CompressR(g);
      const PatternCompression batch_pc = CompressB(g);
      const bool ok_reach = batch_rc.gr.num_nodes() == rc.gr.num_nodes() &&
                            batch_rc.gr.num_edges() == rc.gr.num_edges();
      const bool ok_pattern = batch_pc.gr.num_nodes() == pc.gr.num_nodes() &&
                              batch_pc.gr.num_edges() == pc.gr.num_edges();
      std::printf("      cross-check vs batch recompute: reach %s, pattern "
                  "%s\n",
                  ok_reach ? "OK" : "MISMATCH",
                  ok_pattern ? "OK" : "MISMATCH");
      if (!ok_reach || !ok_pattern) return 1;
    }
  }

  // The maintained Gr still answers queries exactly.
  const auto queries = RandomReachQueries(g.num_nodes(), 500, 23);
  size_t errors = 0;
  for (const auto& q : queries) {
    const bool truth =
        EvalReach(g, q.u, q.v, PathMode::kReflexive, ReachAlgorithm::kBfs);
    errors += truth != AnswerOnCompressed(rc, q, PathMode::kReflexive,
                                          ReachAlgorithm::kBfs);
  }
  std::printf("\nfinal validation: %zu/%zu reachability queries correct "
              "through the maintained Gr.\n",
              queries.size() - errors, queries.size());
  return errors == 0 ? 0 : 1;
}
