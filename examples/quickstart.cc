// Copyright 2026 The QPGC Authors.
//
// Quickstart: build a small labeled graph, compress it for reachability and
// for pattern queries, and evaluate queries on the compressed graphs with
// the same stock algorithms you would run on the original.
//
//   $ ./quickstart

#include <cstdio>

#include "core/pattern_scheme.h"
#include "core/reach_scheme.h"
#include "pattern/match.h"

using namespace qpgc;

int main() {
  // A toy org chart: two managers (label 0) each overseeing two engineers
  // (label 1) who both file reports into the same two archives (label 2).
  Graph g(std::vector<Label>{0, 0, 1, 1, 2, 2});
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(2, 5);
  g.AddEdge(3, 4);
  g.AddEdge(3, 5);
  std::printf("original:   %s\n", g.DebugString().c_str());

  // --- Reachability preserving compression (Section 3 of the paper) ------
  const ReachabilityPreservingCompression reach(g);
  std::printf("reach Gr:   %s  (ratio %.1f%%)\n",
              reach.artifact().gr.DebugString().c_str(),
              reach.CompressionRatio() * 100);
  // F rewrites QR(0, 5) in O(1); any BFS answers it on Gr.
  std::printf("QR(0, 5) on Gr -> %s\n",
              reach.Answer({0, 5}) ? "true" : "false");
  std::printf("QR(5, 0) on Gr -> %s\n",
              reach.Answer({5, 0}) ? "true" : "false");

  // --- Pattern preserving compression (Section 4) ------------------------
  const PatternCompression pc = CompressB(g);
  std::printf("pattern Gr: %s  (ratio %.1f%%)\n", pc.gr.DebugString().c_str(),
              pc.CompressionRatio() * 100);

  // Pattern: a manager within 2 hops of an archive.
  PatternQuery q;
  const uint32_t manager = q.AddNode(0);
  const uint32_t archive = q.AddNode(2);
  q.AddEdge(manager, archive, 2);

  // F is the identity; Match runs on Gr unchanged; P expands hypernodes.
  const MatchResult m = MatchOnCompressed(pc, q);
  std::printf("pattern matched: %s; managers = {", m.matched ? "yes" : "no");
  for (NodeId v : m.match_sets[manager]) std::printf(" %u", v);
  std::printf(" }, archives = {");
  for (NodeId v : m.match_sets[archive]) std::printf(" %u", v);
  std::printf(" }\n");
  return 0;
}
